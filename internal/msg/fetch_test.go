package msg

import (
	"bytes"
	"testing"
)

func TestFetchReqRoundTrip(t *testing.T) {
	for _, r := range []FetchReq{
		{Offset: 0, Length: 1},
		{Offset: 12345, Length: 64 << 10},
		{Offset: MaxFileSize, Length: MaxChunkBytes},
	} {
		b, err := AppendFetchReq(nil, r)
		if err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
		got, err := DecodeFetchReq(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
	}
}

func TestFetchReqBounds(t *testing.T) {
	for _, r := range []FetchReq{
		{Offset: 0, Length: 0},                 // empty range
		{Offset: MaxFileSize + 1, Length: 1},   // offset past the ceiling
		{Offset: 0, Length: MaxChunkBytes + 1}, // chunk larger than a frame carries
		{Offset: 0, Length: ^uint32(0)},        // absurd length
	} {
		if _, err := AppendFetchReq(nil, r); err == nil {
			t.Errorf("append accepted %+v", r)
		}
	}
	// A structurally valid but semantically out-of-bounds wire payload must
	// be rejected on decode too (the encoder on the other side may lie).
	b := make([]byte, 12) // offset 0, length 0
	if _, err := DecodeFetchReq(b); err == nil {
		t.Error("decode accepted zero-length range")
	}
	if _, err := DecodeFetchReq(append(b, 0)); err == nil {
		t.Error("decode accepted trailing garbage")
	}
	if _, err := DecodeFetchReq(b[:7]); err == nil {
		t.Error("decode accepted truncated payload")
	}
}

func TestFetchRespRoundTrip(t *testing.T) {
	chunk := bytes.Repeat([]byte{0xAB}, 1024)
	r := &FetchResp{TotalSize: 1 << 20, FileCRC: 0xDEADBEEF, ChunkCRC: 0x1234, Chunk: chunk}
	b, err := AppendFetchResp(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFetchResp(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalSize != r.TotalSize || got.FileCRC != r.FileCRC ||
		got.ChunkCRC != r.ChunkCRC || !bytes.Equal(got.Chunk, r.Chunk) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFetchRespBounds(t *testing.T) {
	if _, err := AppendFetchResp(nil, &FetchResp{TotalSize: MaxFileSize + 1}); err == nil {
		t.Error("append accepted oversize total")
	}
	big := &FetchResp{TotalSize: MaxFileSize, Chunk: make([]byte, MaxChunkBytes+1)}
	if _, err := AppendFetchResp(nil, big); err == nil {
		t.Error("append accepted oversize chunk")
	}
	// Chunk longer than the declared total: a splice no honest holder emits.
	lie, err := AppendFetchResp(nil, &FetchResp{TotalSize: 8, Chunk: make([]byte, 8)})
	if err != nil {
		t.Fatal(err)
	}
	lie[7] = 4 // shrink declared TotalSize below the chunk length
	if _, err := DecodeFetchResp(lie); err == nil {
		t.Error("decode accepted chunk longer than total size")
	}
}

func TestHoldersRoundTrip(t *testing.T) {
	hs := []Holder{
		{PID: 3, Addr: "127.0.0.1:7103", Version: 7},
		{PID: 12, Addr: "127.0.0.1:7112", Version: 0},
		{PID: 0, Addr: "127.0.0.1:7100", Version: 2},
	}
	b, err := AppendHolders(nil, hs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHolders(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(hs) {
		t.Fatalf("got %d holders, want %d", len(got), len(hs))
	}
	for i := range hs {
		if got[i] != hs[i] {
			t.Fatalf("holder %d: %+v != %+v", i, got[i], hs[i])
		}
	}
}

func TestHoldersBounds(t *testing.T) {
	if _, err := AppendHolders(nil, nil); err == nil {
		t.Error("append accepted empty set")
	}
	if _, err := AppendHolders(nil, make([]Holder, MaxHolders+1)); err == nil {
		t.Error("append accepted oversize set")
	}
	long := []Holder{{Addr: string(make([]byte, MaxName+1))}}
	if _, err := AppendHolders(nil, long); err == nil {
		t.Error("append accepted oversize addr")
	}
	// A count prefix claiming more holders than the bytes carry.
	b, err := AppendHolders(nil, []Holder{{PID: 1, Addr: "a", Version: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b[3] = 200
	if _, err := DecodeHolders(b); err == nil {
		t.Error("decode accepted lying count prefix")
	}
	if _, err := DecodeHolders([]byte{0, 0, 0, 0}); err == nil {
		t.Error("decode accepted empty set")
	}
}

// FuzzDecodeFetchReq exercises the ranged-fetch request codec: any input
// either fails cleanly or round-trips to identical bytes.
func FuzzDecodeFetchReq(f *testing.F) {
	seed, _ := AppendFetchReq(nil, FetchReq{Offset: 4096, Length: 64 << 10})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeFetchReq(data)
		if err != nil {
			return
		}
		re, err := AppendFetchReq(nil, r)
		if err != nil {
			t.Fatalf("re-encode of decoded req failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("fetch req not canonical: %x != %x", re, data)
		}
	})
}

// FuzzDecodeFetchResp exercises the chunk response codec, including lying
// length prefixes and totals smaller than the chunk.
func FuzzDecodeFetchResp(f *testing.F) {
	seed, _ := AppendFetchResp(nil, &FetchResp{TotalSize: 64, FileCRC: 1, ChunkCRC: 2, Chunk: make([]byte, 64)})
	f.Add(seed)
	f.Add([]byte{})
	// Lying chunk-length prefix: declares 1 MiB, carries nothing.
	lie := make([]byte, fetchRespWire)
	lie[16], lie[17] = 0x10, 0x00
	f.Add(lie)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeFetchResp(data)
		if err != nil {
			return
		}
		re, err := AppendFetchResp(nil, r)
		if err != nil {
			t.Fatalf("re-encode of decoded resp failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("fetch resp not canonical")
		}
	})
}

// FuzzDecodeHolders exercises the replica-set locate answer codec.
func FuzzDecodeHolders(f *testing.F) {
	seed, _ := AppendHolders(nil, []Holder{{PID: 1, Addr: "127.0.0.1:7101", Version: 3}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd count prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		hs, err := DecodeHolders(data)
		if err != nil {
			return
		}
		re, err := AppendHolders(nil, hs)
		if err != nil {
			t.Fatalf("re-encode of decoded holders failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("holders not canonical")
		}
	})
}
