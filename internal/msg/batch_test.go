package msg

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestBatchRequestsRoundTrip(t *testing.T) {
	in := []*Request{
		{Kind: KindGet, Name: "a"},
		{Kind: KindGet, Flags: FlagFallback, Name: "b", Hops: 3},
		{Kind: KindUpdate, Name: "c", Data: []byte("payload"), Version: 9},
	}
	enc, err := AppendBatchRequests(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatchRequests(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d sub-requests, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Kind != in[i].Kind || out[i].Name != in[i].Name ||
			!bytes.Equal(out[i].Data, in[i].Data) || out[i].Version != in[i].Version ||
			out[i].Flags != in[i].Flags || out[i].Hops != in[i].Hops {
			t.Fatalf("sub-request %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestBatchResponsesRoundTrip(t *testing.T) {
	in := []*Response{
		{OK: true, ServedBy: 4, Version: 7, Data: []byte("x")},
		{Err: "netnode: file not found (fault)"},
	}
	enc, err := AppendBatchResponses(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatchResponses(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d sub-responses, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].OK != in[i].OK || out[i].ServedBy != in[i].ServedBy ||
			out[i].Version != in[i].Version || out[i].Err != in[i].Err ||
			!bytes.Equal(out[i].Data, in[i].Data) {
			t.Fatalf("sub-response %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestBatchRejectsNesting(t *testing.T) {
	if _, err := AppendBatchRequests(nil, []*Request{{Kind: KindBatch}}); err == nil {
		t.Fatal("encoder accepted a nested batch")
	}
	// Hand-build a nested batch the encoder refuses to produce.
	inner, err := AppendRequest(nil, &Request{Kind: KindBatch, Name: "evil"})
	if err != nil {
		t.Fatal(err)
	}
	raw := binary.BigEndian.AppendUint32(nil, 1)
	raw = binary.BigEndian.AppendUint32(raw, uint32(len(inner)))
	raw = append(raw, inner...)
	if _, err := DecodeBatchRequests(raw); err != ErrCorrupt {
		t.Fatalf("decoder accepted a nested batch: err = %v", err)
	}
}

func TestBatchRejectsLyingPrefixes(t *testing.T) {
	// Sub-request count over the limit.
	over := binary.BigEndian.AppendUint32(nil, MaxBatch+1)
	if _, err := DecodeBatchRequests(over); err != ErrCorrupt {
		t.Fatalf("oversized count: err = %v, want ErrCorrupt", err)
	}
	// Inner length longer than the bytes present.
	lie := binary.BigEndian.AppendUint32(nil, 1)
	lie = binary.BigEndian.AppendUint32(lie, 1<<30)
	lie = append(lie, 0xFF)
	if _, err := DecodeBatchRequests(lie); err != ErrCorrupt {
		t.Fatalf("lying inner length: err = %v, want ErrCorrupt", err)
	}
	// Trailing garbage after the declared sub-requests.
	good, err := AppendBatchRequests(nil, []*Request{{Kind: KindGet, Name: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBatchRequests(append(good, 0x00)); err != ErrCorrupt {
		t.Fatalf("trailing garbage: err = %v, want ErrCorrupt", err)
	}
	// Same shapes through the response decoder.
	if _, err := DecodeBatchResponses(over); err != ErrCorrupt {
		t.Fatalf("oversized response count: err = %v, want ErrCorrupt", err)
	}
	if _, err := DecodeBatchResponses(lie); err != ErrCorrupt {
		t.Fatalf("lying response length: err = %v, want ErrCorrupt", err)
	}
}

func TestBatchSizeLimits(t *testing.T) {
	reqs := make([]*Request, MaxBatch+1)
	for i := range reqs {
		reqs[i] = &Request{Kind: KindGet, Name: "x"}
	}
	if _, err := AppendBatchRequests(nil, reqs); err != ErrFrameTooLarge {
		t.Fatalf("over-count batch: err = %v, want ErrFrameTooLarge", err)
	}
	// Two half-MaxData sub-requests overflow the Data budget together.
	big := bytes.Repeat([]byte{7}, MaxData/2+64)
	if _, err := AppendBatchRequests(nil, []*Request{
		{Kind: KindStore, Name: "a", Data: big},
		{Kind: KindStore, Name: "b", Data: big},
	}); err != ErrFrameTooLarge {
		t.Fatalf("over-size batch: err = %v, want ErrFrameTooLarge", err)
	}
}

// TestKindStringsExhaustive pins that every declared kind names itself:
// adding a kind without extending String() (and with it the switch arms
// that key on the name) fails here instead of silently reporting
// "kind(N)" in metrics and stat output.
func TestKindStringsExhaustive(t *testing.T) {
	for k := 1; k < KindCount; k++ {
		s := Kind(k).String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind(%d) has default String %q; extend Kind.String", k, s)
		}
	}
	if got := Kind(KindCount).String(); !strings.HasPrefix(got, "kind(") {
		t.Errorf("Kind(KindCount) = %q; KindCount no longer points past the last kind", got)
	}
}

// FuzzDecodeBatchRequests hammers the nested decoder with arbitrary bytes:
// it must never panic or over-allocate, and anything it accepts must
// re-encode to an equivalent decode.
func FuzzDecodeBatchRequests(f *testing.F) {
	seed, _ := AppendBatchRequests(nil, []*Request{
		{Kind: KindGet, Name: "a"},
		{Kind: KindUpdate, Name: "b", Data: []byte("payload"), Version: 3},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(binary.BigEndian.AppendUint32(nil, MaxBatch+1))
	f.Add(append(binary.BigEndian.AppendUint32(nil, 1), 0xFF, 0xFF, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := DecodeBatchRequests(data)
		if err != nil {
			return
		}
		re, err := AppendBatchRequests(nil, reqs)
		if err != nil {
			t.Fatalf("accepted batch failed to re-encode: %v", err)
		}
		again, err := DecodeBatchRequests(re)
		if err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("decode/encode not a fixpoint: %d vs %d sub-requests", len(again), len(reqs))
		}
		for i := range reqs {
			if again[i].Kind != reqs[i].Kind || again[i].Name != reqs[i].Name ||
				!bytes.Equal(again[i].Data, reqs[i].Data) || again[i].Version != reqs[i].Version {
				t.Fatalf("sub-request %d not a fixpoint: %+v vs %+v", i, reqs[i], again[i])
			}
		}
	})
}

// FuzzDecodeBatchResponses mirrors FuzzDecodeBatchRequests for the
// response side.
func FuzzDecodeBatchResponses(f *testing.F) {
	seed, _ := AppendBatchResponses(nil, []*Response{
		{OK: true, ServedBy: 2, Version: 5, Data: []byte("x")},
		{Err: "fault"},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(binary.BigEndian.AppendUint32(nil, MaxBatch+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		resps, err := DecodeBatchResponses(data)
		if err != nil {
			return
		}
		re, err := AppendBatchResponses(nil, resps)
		if err != nil {
			t.Fatalf("accepted batch failed to re-encode: %v", err)
		}
		if _, err := DecodeBatchResponses(re); err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
	})
}
