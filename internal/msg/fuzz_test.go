package msg

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest hammers the request decoder with arbitrary bytes: it
// must never panic or over-allocate, and anything it accepts must
// re-encode to an equivalent decode (decode∘encode∘decode fixpoint).
func FuzzDecodeRequest(f *testing.F) {
	seed, _ := AppendRequest(nil, &Request{
		Kind: KindGet, Flags: FlagFallback, Origin: 7, Hops: 2,
		Subtree: 1, Version: 99, Name: "file", Data: []byte("payload"),
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		re, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		again, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if again.Kind != req.Kind || again.Name != req.Name ||
			!bytes.Equal(again.Data, req.Data) || again.Version != req.Version {
			t.Fatalf("decode/encode not a fixpoint: %+v vs %+v", req, again)
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for responses.
func FuzzDecodeResponse(f *testing.F) {
	seed, _ := AppendResponse(nil, &Response{
		OK: true, ServedBy: 4, Hops: 3, Version: 7, Err: "", Data: []byte("x"),
	})
	f.Add(seed)
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		re, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("accepted response failed to re-encode: %v", err)
		}
		if _, err := DecodeResponse(re); err != nil {
			t.Fatalf("re-encoded response failed to decode: %v", err)
		}
	})
}
