package msg

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeRequest hammers the request decoder with arbitrary bytes: it
// must never panic or over-allocate, and anything it accepts must
// re-encode to an equivalent decode (decode∘encode∘decode fixpoint).
func FuzzDecodeRequest(f *testing.F) {
	seed, _ := AppendRequest(nil, &Request{
		Kind: KindGet, Flags: FlagFallback, Origin: 7, Hops: 2,
		Subtree: 1, Version: 99, Name: "file", Data: []byte("payload"),
	})
	f.Add(seed)
	traced, _ := AppendRequest(nil, &Request{
		Kind: KindGet, Flags: FlagTrace, Name: "file", TraceID: 12345,
		Path: []Hop{{PID: 8, Action: HopForward, Dur: 100}, {PID: 4, Action: HopServe, Dur: 50}},
	})
	f.Add(traced)
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		re, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		again, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if again.Kind != req.Kind || again.Name != req.Name ||
			!bytes.Equal(again.Data, req.Data) || again.Version != req.Version ||
			again.TraceID != req.TraceID || len(again.Path) != len(req.Path) {
			t.Fatalf("decode/encode not a fixpoint: %+v vs %+v", req, again)
		}
		for i := range req.Path {
			if again.Path[i] != req.Path[i] {
				t.Fatalf("hop %d not a fixpoint: %+v vs %+v", i, req.Path[i], again.Path[i])
			}
		}
	})
}

// FuzzReadRequestFrame hammers the stream layer — length prefix included —
// with arbitrary bytes: ReadRequest must never panic and, critically, a
// lying length prefix must not cost a frame-sized allocation. The seeds
// cover the attack shapes: a maximal declared length with no payload, a
// just-over-limit prefix, and a declared length larger than the bytes that
// follow.
func FuzzReadRequestFrame(f *testing.F) {
	var framed bytes.Buffer
	if err := WriteRequest(&framed, &Request{Kind: KindGet, Name: "file", Data: []byte("payload")}); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})                            // 4 GiB declared, nothing sent
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrame+1))            // just over the limit
	f.Add(append(binary.BigEndian.AppendUint32(nil, MaxFrame), 'x')) // huge claim, 1 byte sent
	f.Add(append(binary.BigEndian.AppendUint32(nil, 1<<20), bytes.Repeat([]byte{0}, 64)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the stream layer accepts must re-encode and re-read.
		var re bytes.Buffer
		if err := WriteRequest(&re, req); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if _, err := ReadRequest(&re); err != nil {
			t.Fatalf("re-encoded frame failed to read: %v", err)
		}
	})
}

// TestReadFrameRejectsOversizedPrefix pins the limit behavior the fuzzer
// explores: a declared length over MaxFrame is rejected before any payload
// is read, and a declared length the sender never backs with bytes fails
// with a truncation error instead of blocking on a frame-sized buffer.
func TestReadFrameRejectsOversizedPrefix(t *testing.T) {
	over := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(over)); err != ErrFrameTooLarge {
		t.Fatalf("oversized prefix: err = %v, want ErrFrameTooLarge", err)
	}
	lie := append(binary.BigEndian.AppendUint32(nil, MaxFrame), "ten bytes."...)
	if _, err := ReadFrame(bytes.NewReader(lie)); err == nil {
		t.Fatal("lying prefix with truncated body was accepted")
	}
	// An honest maximal frame still round-trips.
	big := &Request{Kind: KindStore, Name: "big", Data: bytes.Repeat([]byte{7}, 1<<20)}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, big); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf)
	if err != nil || !bytes.Equal(got.Data, big.Data) {
		t.Fatalf("1 MiB frame did not round-trip: %v", err)
	}
}

// FuzzReadFrameID hammers the pipelined frame extension: arbitrary bytes
// through ReadRequestID must never panic, a frame accepted with an ID must
// round-trip through WriteRequestID with the ID intact, and the legacy
// framing must keep decoding as before (hasID false, ID zero). The seeds
// cover both framings plus the attack shapes with the ID bit set.
func FuzzReadFrameID(f *testing.F) {
	var legacy bytes.Buffer
	if err := WriteRequest(&legacy, &Request{Kind: KindGet, Name: "file"}); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())
	var idframe bytes.Buffer
	if err := WriteRequestID(&idframe, &Request{Kind: KindGet, Name: "file"}, 0xdeadbeef); err != nil {
		f.Fatal(err)
	}
	f.Add(idframe.Bytes())
	f.Add(binary.BigEndian.AppendUint32(nil, FrameIDBit))              // ID frame, no ID word sent
	f.Add(binary.BigEndian.AppendUint32(nil, FrameIDBit|(MaxFrame+1))) // ID bit + oversized length
	f.Add(append(binary.BigEndian.AppendUint32(nil, FrameIDBit|MaxFrame) /* huge claim */, bytes.Repeat([]byte{0}, 16)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, id, hasID, err := ReadRequestID(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if hasID {
			if err := WriteRequestID(&re, req, id); err != nil {
				t.Fatalf("accepted ID frame failed to re-encode: %v", err)
			}
		} else {
			if id != 0 {
				t.Fatalf("legacy frame decoded with id %d", id)
			}
			if err := WriteRequest(&re, req); err != nil {
				t.Fatalf("accepted legacy frame failed to re-encode: %v", err)
			}
		}
		again, id2, hasID2, err := ReadRequestID(&re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to read: %v", err)
		}
		if hasID2 != hasID || id2 != id || again.Kind != req.Kind || again.Name != req.Name {
			t.Fatalf("frame not a fixpoint: (%v,%d,%v) vs (%v,%d,%v)",
				req.Kind, id, hasID, again.Kind, id2, hasID2)
		}
	})
}

// TestFrameIDRoundTrip pins the pipelined framing: IDs survive both
// directions, a legacy reader rejects an ID frame cleanly (the set high
// bit reads as an over-MaxFrame length), and responses echo IDs the same
// way requests carry them.
func TestFrameIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Kind: KindGet, Name: "pipelined", Data: []byte("x")}
	if err := WriteRequestID(&buf, req, 42); err != nil {
		t.Fatal(err)
	}
	got, id, hasID, err := ReadRequestID(bytes.NewReader(buf.Bytes()))
	if err != nil || !hasID || id != 42 || got.Name != req.Name {
		t.Fatalf("request ID frame: req=%+v id=%d hasID=%v err=%v", got, id, hasID, err)
	}
	// The version gate: a pre-pipelining decoder compares the raw length
	// word against MaxFrame, so the set high bit makes it reject the frame
	// cleanly instead of misreading the ID as payload.
	if word := binary.BigEndian.Uint32(buf.Bytes()[:4]); word <= MaxFrame {
		t.Fatalf("ID frame length word %#x would pass a legacy decoder", word)
	}

	buf.Reset()
	resp := &Response{OK: true, ServedBy: 3, Data: []byte("y")}
	if err := WriteResponseID(&buf, resp, 7); err != nil {
		t.Fatal(err)
	}
	gotResp, id, hasID, err := ReadResponseID(&buf)
	if err != nil || !hasID || id != 7 || !gotResp.OK || !bytes.Equal(gotResp.Data, resp.Data) {
		t.Fatalf("response ID frame: resp=%+v id=%d hasID=%v err=%v", gotResp, id, hasID, err)
	}

	// Legacy frames still decode through the ID-aware readers.
	buf.Reset()
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, id, hasID, err = ReadRequestID(&buf)
	if err != nil || hasID || id != 0 || got.Name != req.Name {
		t.Fatalf("legacy frame via ReadRequestID: req=%+v id=%d hasID=%v err=%v", got, id, hasID, err)
	}
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for responses.
func FuzzDecodeResponse(f *testing.F) {
	seed, _ := AppendResponse(nil, &Response{
		OK: true, ServedBy: 4, Hops: 3, Version: 7, Err: "", Data: []byte("x"),
	})
	f.Add(seed)
	tracedResp, _ := AppendResponse(nil, &Response{
		OK: true, ServedBy: 4,
		Path: []Hop{{PID: 8, Action: HopForward, Dur: 100}, {PID: 4, Action: HopServe, Dur: 50}},
	})
	f.Add(tracedResp)
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		re, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("accepted response failed to re-encode: %v", err)
		}
		if _, err := DecodeResponse(re); err != nil {
			t.Fatalf("re-encoded response failed to decode: %v", err)
		}
	})
}
