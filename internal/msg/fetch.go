package msg

// The chunked data plane payloads (docs/ROUTING.md): a KindFetch request's
// Data carries a byte range (offset + length), its response's Data one
// verified chunk plus the transfer-level facts every chunk restates; a
// KindLocateSet response's Data carries the replica set of a name as
// (PID, address, version) holder records. All three follow the
// digest/batch decoding discipline — every nested length is checked
// against its limit and against the bytes actually present, a lying
// prefix is ErrCorrupt, never an allocation.

import "encoding/binary"

// fetchRespWire is the fixed part of an encoded FetchResp: total size u64,
// file CRC u32, chunk CRC u32, chunk length prefix u32. A chunk plus this
// overhead must fit the MaxData bound of the Response.Data field carrying
// it, so MaxChunkBytes is the hard per-chunk ceiling.
const fetchRespWire = 8 + 4 + 4 + 4

// MaxChunkBytes is the largest chunk one KindFetch response can carry:
// the response Data bound minus the fixed FetchResp framing.
const MaxChunkBytes = MaxData - fetchRespWire

// FetchReq is the range of a KindFetch request: Length bytes starting at
// Offset. The holder truncates the final chunk at end-of-file, so a
// request may extend past the total size without being an error.
type FetchReq struct {
	Offset uint64
	Length uint32
}

func fetchReqSane(r FetchReq) bool {
	return r.Offset <= MaxFileSize && r.Length != 0 && int64(r.Length) <= MaxChunkBytes
}

// AppendFetchReq encodes a KindFetch range onto b.
func AppendFetchReq(b []byte, r FetchReq) ([]byte, error) {
	if !fetchReqSane(r) {
		return nil, ErrFrameTooLarge
	}
	b = binary.BigEndian.AppendUint64(b, r.Offset)
	b = binary.BigEndian.AppendUint32(b, r.Length)
	return b, nil
}

// DecodeFetchReq parses a KindFetch request payload.
func DecodeFetchReq(b []byte) (FetchReq, error) {
	var r FetchReq
	var err error
	if r.Offset, b, err = takeUint64(b); err != nil {
		return FetchReq{}, err
	}
	if r.Length, b, err = takeUint32(b); err != nil {
		return FetchReq{}, err
	}
	if len(b) != 0 || !fetchReqSane(r) {
		return FetchReq{}, ErrCorrupt
	}
	return r, nil
}

// FetchResp is one chunk of a KindFetch response: the bytes at the
// requested offset with their own CRC-32C, plus the transfer-level facts
// restated on every chunk — the file's total size and whole-file CRC-32C
// — so a client can pin the transfer shape off whichever chunk answers
// first and verify the reassembled file end to end.
type FetchResp struct {
	TotalSize uint64
	FileCRC   uint32
	ChunkCRC  uint32
	Chunk     []byte
}

// AppendFetchResp encodes a KindFetch response payload onto b.
func AppendFetchResp(b []byte, r *FetchResp) ([]byte, error) {
	if r.TotalSize > MaxFileSize || len(r.Chunk) > MaxChunkBytes {
		return nil, ErrFrameTooLarge
	}
	b = binary.BigEndian.AppendUint64(b, r.TotalSize)
	b = binary.BigEndian.AppendUint32(b, r.FileCRC)
	b = binary.BigEndian.AppendUint32(b, r.ChunkCRC)
	b = appendBytes(b, r.Chunk)
	return b, nil
}

// DecodeFetchResp parses a KindFetch response payload.
func DecodeFetchResp(b []byte) (*FetchResp, error) {
	r := &FetchResp{}
	var err error
	if r.TotalSize, b, err = takeUint64(b); err != nil {
		return nil, err
	}
	if r.FileCRC, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if r.ChunkCRC, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if r.Chunk, b, err = takeBytes(b, MaxChunkBytes); err != nil {
		return nil, err
	}
	if len(b) != 0 || r.TotalSize > MaxFileSize || uint64(len(r.Chunk)) > r.TotalSize {
		return nil, ErrCorrupt
	}
	return r, nil
}

// Holder is one replica-set member of a KindLocateSet answer: the PID and
// listen address of a peer expected to hold the name, and the version it
// is known to hold (0 for a required holder whose copy was not probed).
type Holder struct {
	PID     uint32
	Addr    string
	Version uint64
}

// AppendHolders encodes a KindLocateSet response payload onto b. The
// serving holder lists itself first; the set is never empty.
func AppendHolders(b []byte, hs []Holder) ([]byte, error) {
	if len(hs) == 0 || len(hs) > MaxHolders {
		return nil, ErrFrameTooLarge
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(hs)))
	for _, h := range hs {
		if len(h.Addr) > MaxName {
			return nil, ErrFrameTooLarge
		}
		b = binary.BigEndian.AppendUint32(b, h.PID)
		b = appendString(b, h.Addr)
		b = binary.BigEndian.AppendUint64(b, h.Version)
	}
	return b, nil
}

// DecodeHolders parses a KindLocateSet response payload.
func DecodeHolders(b []byte) ([]Holder, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > MaxHolders {
		return nil, ErrCorrupt
	}
	hs := make([]Holder, 0, n)
	for i := uint32(0); i < n; i++ {
		var h Holder
		if h.PID, b, err = takeUint32(b); err != nil {
			return nil, err
		}
		if h.Addr, b, err = takeString(b, MaxName); err != nil {
			return nil, err
		}
		if h.Version, b, err = takeUint64(b); err != nil {
			return nil, err
		}
		hs = append(hs, h)
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return hs, nil
}
