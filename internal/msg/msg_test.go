package msg

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	f := func(kind uint8, flags uint8, origin, hops, subtree uint32, version uint64, name string, data []byte) bool {
		if len(name) > MaxName || len(data) > MaxData {
			return true // generator stays under limits anyway
		}
		in := &Request{
			Kind: Kind(kind), Flags: flags, Origin: origin, Hops: hops,
			Subtree: subtree, Version: version, Name: name, Data: data,
		}
		b, err := AppendRequest(nil, in)
		if err != nil {
			return false
		}
		out, err := DecodeRequest(b)
		if err != nil {
			return false
		}
		if len(in.Data) == 0 {
			in.Data = out.Data // nil vs empty slice are both fine
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTracedRequestRoundTrip(t *testing.T) {
	in := &Request{
		Kind: KindGet, Flags: FlagTrace, Origin: 8, Hops: 2, Name: "f",
		TraceID: 0xDEADBEEFCAFE,
		Path: []Hop{
			{PID: 8, Parent: NoParent, Action: HopForward, Dur: 120 * time.Microsecond},
			{PID: 0, Parent: 8, Action: HopFallback, Dur: 45 * time.Microsecond},
			{PID: 4, Parent: 0, Action: HopServe, Dur: 310 * time.Microsecond},
		},
	}
	b, err := AppendRequest(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != in.TraceID || !reflect.DeepEqual(out.Path, in.Path) {
		t.Fatalf("trace round trip: %+v", out)
	}
	resp := &Response{OK: true, ServedBy: 4, Path: in.Path}
	rb, err := AppendResponse(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	rout, err := DecodeResponse(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rout.Path, in.Path) {
		t.Fatalf("response path round trip: %+v", rout.Path)
	}
}

func TestTooManyHopsRejected(t *testing.T) {
	long := make([]Hop, MaxHops+1)
	if _, err := AppendRequest(nil, &Request{Kind: KindGet, Path: long}); err != ErrFrameTooLarge {
		t.Fatalf("request err = %v", err)
	}
	if _, err := AppendResponse(nil, &Response{Path: long}); err != ErrFrameTooLarge {
		t.Fatalf("response err = %v", err)
	}
	// A decoder seeing a hop count beyond the bytes present must fail
	// before allocating the declared count.
	good, _ := AppendRequest(nil, &Request{Kind: KindGet, Name: "n"})
	bad := append([]byte{}, good...)
	bad[len(bad)-4] = 0xFF // hop-count prefix is the last uint32
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("lying hop count accepted")
	}
}

func TestHopActionString(t *testing.T) {
	for a, want := range map[HopAction]string{
		HopForward: "forward", HopFallback: "fallback",
		HopMigrate: "migrate", HopServe: "serve",
		HopLocate: "locate", HopFault: "fault",
		HopFanout: "fanout", HopDeliver: "deliver",
		HopRepair: "repair", HopEdge: "edge",
		HopAction(77): "action(77)",
	} {
		if a.String() != want {
			t.Fatalf("HopAction(%d).String() = %q", a, a.String())
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	f := func(ok bool, servedBy, hops uint32, version uint64, errStr string, data []byte) bool {
		if len(errStr) > MaxName {
			return true
		}
		in := &Response{OK: ok, ServedBy: servedBy, Hops: hops, Version: version, Err: errStr, Data: data}
		b, err := AppendResponse(nil, in)
		if err != nil {
			return false
		}
		out, err := DecodeResponse(b)
		if err != nil {
			return false
		}
		if len(in.Data) == 0 {
			in.Data = out.Data
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Kind: KindGet, Origin: 7, Name: "file", Data: []byte("payload")}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	resp := &Response{OK: true, ServedBy: 4, Hops: 2, Data: []byte("result")}
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	gotReq, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotReq.Name != "file" || string(gotReq.Data) != "payload" || gotReq.Kind != KindGet {
		t.Fatalf("request = %+v", gotReq)
	}
	gotResp, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !gotResp.OK || gotResp.ServedBy != 4 || string(gotResp.Data) != "result" {
		t.Fatalf("response = %+v", gotResp)
	}
}

func TestOversizeRejected(t *testing.T) {
	big := strings.Repeat("x", MaxName+1)
	if _, err := AppendRequest(nil, &Request{Kind: KindGet, Name: big}); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
	// A frame header advertising an absurd size must be rejected before
	// allocation.
	r := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(r); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestCorruptRejected(t *testing.T) {
	good, err := AppendRequest(nil, &Request{Kind: KindGet, Name: "n", Data: []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeRequest(good[:i]); err == nil {
			t.Fatalf("prefix of length %d decoded", i)
		}
	}
	// Trailing garbage must fail.
	if _, err := DecodeRequest(append(append([]byte{}, good...), 0x00)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// A length field pointing past the buffer must fail.
	bad := append([]byte{}, good...)
	bad[22] = 0xFF // high byte of the name-length prefix (after the 22-byte fixed header)
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("oversized inner length accepted")
	}
}

func TestCorruptResponse(t *testing.T) {
	good, err := AppendResponse(nil, &Response{OK: true, Err: "e", Data: []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(good); i++ {
		if _, err := DecodeResponse(good[:i]); err == nil {
			t.Fatalf("prefix of length %d decoded", i)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindInsert: "insert", KindGet: "get", KindUpdate: "update",
		KindStore: "store", KindStat: "stat", KindLocate: "locate",
		KindTraces: "traces", KindFetch: "fetch", KindLocateSet: "locate-set",
		Kind(99): "kind(99)",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

func TestUnknownKindError(t *testing.T) {
	// The exact phrasing is the version gate legacy peers already emit:
	// their dispatch answers `netnode: unknown kind kind(N)`. A locate
	// caller must classify both that historical string and the one
	// UnknownKindError renders today.
	if got := UnknownKindError(KindLocate); got != "netnode: unknown kind locate" {
		t.Fatalf("UnknownKindError = %q", got)
	}
	for _, e := range []string{
		UnknownKindError(KindLocate),
		UnknownKindError(Kind(42)),
		"netnode: unknown kind kind(11)", // a legacy build's verbatim answer
	} {
		if !IsUnknownKind(e) {
			t.Fatalf("IsUnknownKind(%q) = false", e)
		}
	}
	for _, e := range []string{"", "netnode: file not found (fault)", "gateway: overloaded"} {
		if IsUnknownKind(e) {
			t.Fatalf("IsUnknownKind(%q) = true", e)
		}
	}
}

func TestReadFrameShortInput(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("short header accepted")
	}
	// Header promising more bytes than present.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 9, 1, 2})); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func BenchmarkRequestEncode(b *testing.B) {
	req := &Request{Kind: KindGet, Origin: 7, Name: "some/file/name", Data: make([]byte, 1024)}
	buf := make([]byte, 0, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = AppendRequest(buf, req)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequestDecode(b *testing.B) {
	req := &Request{Kind: KindGet, Origin: 7, Name: "some/file/name", Data: make([]byte, 1024)}
	buf, _ := AppendRequest(nil, req)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(buf); err != nil {
			b.Fatal(err)
		}
	}
}
