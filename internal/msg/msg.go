// Package msg defines the wire protocol spoken by the networked LessLog
// nodes (internal/netnode): a compact length-prefixed binary framing built
// on encoding/binary, carrying the file operations of paper §2.2 plus the
// flags the §3/§4 routing needs to terminate (the FINDLIVENODE fallback
// and cross-subtree migration state travel with the request).
//
// Frame layout (big endian):
//
//	uint32  payload length (high bit: FrameIDBit, pipelined frame)
//	uint64  request ID (only when FrameIDBit is set)
//	payload (Request or Response encoding)
//
// Both payloads end with a trace section — a trace ID (requests only) and
// a list of Hop records (PID, parent PID, action, duration) — that carries
// the live route of a FlagTrace request across the wire. The parent field
// turns the hop list into a tree: linear lookups chain each hop to the one
// before it, while broadcast fan-outs attach every delivery to the stop
// that forwarded to it, so one trace can describe an entire update's
// fan-out shape. See docs/OBSERVABILITY.md for the exact byte layout.
//
// Sizes are bounded (MaxName, MaxData, MaxHops) so a malicious or corrupt
// peer cannot make a node allocate unboundedly.
package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Kind enumerates request types.
type Kind uint8

// Request kinds. KindStore places a copy directly (insert placement and
// replica creation); KindGet and KindUpdate are forwarded per the lookup
// tree; KindStat asks a node for its status snapshot.
const (
	KindInsert Kind = iota + 1
	KindGet
	KindUpdate
	KindStore
	KindStat
	// KindRegister announces a membership change (§5.1's register-live /
	// register-dead broadcast): Origin carries the PID, Data its address
	// for a live registration, FlagDead marks a departure.
	KindRegister
	// KindTable asks a peer for its PID→address table, the networked
	// status word a joining node bootstraps from.
	KindTable
	// KindHas asks whether the peer holds a copy of Name — the probe the
	// distributed REPLICATEFILE uses to find "the first node in the
	// children list that does not have a replicated copy" (§2.2).
	KindHas
	// KindDelete erases a file everywhere via the same top-down
	// children-list broadcast updates use (FlagPropagate marks the
	// broadcast legs).
	KindDelete
	// KindBatch pipelines several sub-requests in one frame: Data carries
	// a bounds-checked list of encoded Requests (AppendBatchRequests), the
	// response's Data the matching Responses. Batches do not nest.
	KindBatch
	// KindLocate is the control half of the locate-then-fetch data plane:
	// it is forwarded along the lookup tree exactly like KindGet (same
	// ancestor walk, FINDLIVENODE fallback and subtree migration), but the
	// serving holder answers with a tiny metadata frame — its PID in
	// ServedBy, its listen address in Data, the copy's version in Version —
	// never the file payload. Clients then fetch the data in one hop with a
	// FlagLocalOnly get. Version-gated like the FrameIDBit precedent: a
	// legacy peer answers with the unknown-kind error (IsUnknownKind), and
	// the caller falls back to the relay path.
	KindLocate
	// KindDigest is the anti-entropy synchronization probe of the replica
	// repair subsystem (docs/REPAIR.md): Data carries a bounds-checked
	// bucket-hash digest of the sender's name set (AppendDigest), Origin the
	// sender's PID. The responder compares the digest against its own
	// holdings that belong on the sender and answers with the (name,
	// version) entries falling into differing buckets (AppendDigestEntries)
	// — so synchronization cost scales with divergence, not inventory.
	// Version-gated like KindLocate: a pre-repair peer answers unknown-kind
	// and the caller skips digest synchronization against it.
	KindDigest
	// KindTraces asks a node for its sampled-trace ring (docs/
	// OBSERVABILITY.md): the response's Data carries the ring snapshot as
	// JSON — recent traces plus the retained slow/error tail. Version-gated
	// like KindLocate: a pre-telemetry peer answers unknown-kind and the
	// caller reports the node as trace-less rather than failing.
	KindTraces
	// KindFetch is the ranged read of the chunked data plane
	// (docs/ROUTING.md): a direct client↔holder request for Length bytes at
	// Offset of Name — never forwarded, serve-or-refuse like a FlagLocalOnly
	// get. The request's Data carries the range (AppendFetchReq); its
	// Version pins the copy's version (0 accepts any), so a transfer striped
	// across replicas can never splice bytes from two versions. The
	// response's Data carries the chunk with its CRC-32C plus the file's
	// total size and whole-file CRC (AppendFetchResp); the response Version
	// reports the version actually served. Version-gated like KindLocate: a
	// pre-chunking peer answers unknown-kind and the caller falls back to
	// whole-frame fetches.
	KindFetch
	// KindLocateSet is the replica-set locate: forwarded along the lookup
	// tree exactly like KindLocate, but the serving holder answers with the
	// known replica set — its own copy first (PID, address, real version),
	// then the other required primary holders of the name's subtree
	// placements — encoded as AppendHolders in the response's Data. Clients
	// stripe chunk fetches round-robin across the set and cache it as a
	// multi-holder route hint. Version-gated like KindLocate.
	KindLocateSet
	// KindPut is the ranged write of the chunked data plane — the upload
	// twin of KindFetch (docs/ROUTING.md "write plane"). A direct
	// client↔peer request whose Data carries one staged chunk or a commit/
	// abort control frame (AppendPutReq): the opening chunk declares the
	// transfer shape (total size, whole-file CRC-32C) and the response
	// returns a staging token; further chunks ride the token; an explicit
	// commit restates the shape and applies the assembled payload through
	// the normal write path (insert placement or update broadcast), so a
	// partial upload is never visible or durable. Never forwarded; bounds-
	// checked per chunk. Version-gated like KindLocate: a pre-chunking peer
	// answers unknown-kind and the caller falls back to whole-frame writes.
	KindPut
	// KindNotify is the pull-based propagation leg of an over-threshold
	// update broadcast: a payload-free KindUpdate twin carrying only the
	// transfer facts — total size, whole-file CRC-32C, and the pull sources
	// already holding the new version (AppendNotifyReq) — with the stamped
	// version in the request's Version. It fans down the children-list
	// broadcast tree exactly like a FlagPropagate update, but each holder
	// pulls the body via KindFetch from a listed source instead of
	// receiving it on the tree, so tree bytes stay O(copies), not
	// O(copies × size). Version-gated like KindLocate: a pre-chunking child
	// answers unknown-kind and the deliverer falls back to a whole-frame
	// update leg.
	KindNotify
)

// KindCount sizes per-kind metric arrays: valid kinds index 1..KindCount-1,
// slot 0 collects unknown kinds.
const KindCount = int(KindNotify) + 1

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindGet:
		return "get"
	case KindUpdate:
		return "update"
	case KindStore:
		return "store"
	case KindStat:
		return "stat"
	case KindRegister:
		return "register"
	case KindTable:
		return "table"
	case KindHas:
		return "has"
	case KindDelete:
		return "delete"
	case KindBatch:
		return "batch"
	case KindLocate:
		return "locate"
	case KindDigest:
		return "digest"
	case KindTraces:
		return "traces"
	case KindFetch:
		return "fetch"
	case KindLocateSet:
		return "locate-set"
	case KindPut:
		return "put"
	case KindNotify:
		return "notify"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// unknownKindPrefix is the wire phrasing every peer build has used for a
// kind its dispatch does not know. It is part of the de-facto protocol:
// locate-speaking callers detect a legacy relay-only peer by this prefix
// and downgrade to the relay path, so the string must stay stable.
const unknownKindPrefix = "netnode: unknown kind"

// UnknownKindError renders the canonical unknown-kind response error for
// k. Dispatchers answer requests they cannot serve with exactly this
// string so IsUnknownKind recognizes them across versions.
func UnknownKindError(k Kind) string {
	return fmt.Sprintf("%s %v", unknownKindPrefix, k)
}

// IsUnknownKind reports whether a response error says the peer does not
// speak the request's kind — the version gate the locate-then-fetch path
// uses to fall back to relay gets against legacy peers.
func IsUnknownKind(errStr string) bool {
	return strings.HasPrefix(errStr, unknownKindPrefix)
}

// Like unknownKindPrefix, these response strings are de-facto protocol:
// data-plane clients match them verbatim to classify a refused direct
// fetch, so the phrasing must stay stable across builds. netnode re-exports
// them as ErrNotHolder / ErrWrongVersion.
const (
	// NotHolderError answers a local-only get or ranged fetch at a peer not
	// holding the file — the "your route hint is stale" signal.
	NotHolderError = "netnode: not holding requested file"
	// WrongVersionError answers a version-pinned fetch whose pin no longer
	// matches the held copy — the splice guard of chunked transfers.
	WrongVersionError = "netnode: version no longer held"
)

// Limits protecting decoders.
const (
	MaxName  = 4 << 10  // 4 KiB file names
	MaxData  = 16 << 20 // 16 MiB file payloads
	MaxHops  = 512      // trace hop records per frame
	MaxBatch = 256      // sub-requests per KindBatch frame
	MaxFrame = MaxData + MaxName + 64 + MaxHops*hopWire

	// MaxDigestBuckets bounds the bucket-hash vector of a KindDigest
	// request (32 KiB of hashes at the cap); MaxDigestEntries bounds the
	// (name, version) list of its response — enough to warm a rejoined
	// peer in a handful of rounds without letting one frame carry an
	// unbounded inventory.
	MaxDigestBuckets = 4096
	MaxDigestEntries = 1024

	// MaxFileSize bounds the total size a chunked transfer (KindFetch or
	// KindPut) may declare: 64 MiB — four single-frame payloads — keeps
	// client reassembly and upload staging buffers bounded while raising
	// the effective file-size ceiling well past one frame. Both planes
	// share the ceiling: anything a chunked write can store, a chunked
	// read can serve back.
	MaxFileSize = 64 << 20
	// MaxHolders bounds the replica set a KindLocateSet answer may carry.
	MaxHolders = 64
)

// Flag bits carried by requests.
const (
	// FlagFallback marks a get that already took the §3 second step; the
	// receiving primary answers instead of forwarding further.
	FlagFallback uint8 = 1 << iota
	// FlagReplica marks a KindStore carrying a replica rather than an
	// inserted copy.
	FlagReplica
	// FlagPropagate marks a KindUpdate that is part of a top-down
	// children-list broadcast rather than a client-initiated update, or a
	// KindRegister relayed by the bootstrap peer (no further relaying).
	FlagPropagate
	// FlagDead marks a KindRegister announcing a departure or failure.
	FlagDead
	// FlagTrace asks every stop on the request's route to append a Hop
	// record; the serving node copies the accumulated path into the
	// response, so the client sees the actual wire-level route (the live
	// counterpart of internal/trace's predicted rendering).
	FlagTrace
	// FlagJSON asks KindStat for the structured JSON stats snapshot
	// instead of the legacy one-line text summary.
	FlagJSON
	// FlagLocalOnly marks a KindGet that must be answered from the local
	// store or with not-found — never forwarded. It is the fetch half of
	// locate-then-fetch: the client already resolved the holder, so a stale
	// route hint degrades into one cheap miss instead of re-amplifying into
	// a relayed tree walk. Legacy peers ignore the bit (unknown flags were
	// never rejected) and forward as usual, which is safe — just slower.
	FlagLocalOnly
	// FlagInventory asks KindStat (with FlagJSON) to include the node's
	// full per-name inventory — name, version, kind, §6 serve count — in
	// the snapshot, so a fleet scraper can compute replica-count
	// distributions and exact top-K hot names. Off by default because the
	// inventory scales with the store while the rest of the snapshot is
	// O(1); legacy peers ignore the bit and answer the plain snapshot.
	FlagInventory
)

// HopAction classifies what one stop on a traced route did with the
// request — mirroring the routing steps of §2.2–§4.
type HopAction uint8

// Hop actions.
const (
	// HopForward: forwarded to the first live ancestor (§2.2/§3 walk).
	HopForward HopAction = iota + 1
	// HopFallback: forwarded via the FINDLIVENODE second step (§3).
	HopFallback
	// HopMigrate: forwarded into the next subtree (§4 migration).
	HopMigrate
	// HopServe: answered from the local store; always the final hop.
	HopServe
	// HopLocate: answered with the holder's location instead of the data —
	// the final hop of a traced KindLocate resolution.
	HopLocate
	// HopFault: the request died here — no copy and no next hop (or every
	// forward attempt failed). Always the final hop of a faulted route;
	// carrying it back makes dead routes debuggable with `-op get -trace`.
	HopFault
	// HopFanout: this stop initiated a top-down broadcast (update/delete):
	// the root of a fan-out trace tree. Its duration covers the whole
	// synchronous fan-out.
	HopFanout
	// HopDeliver: a broadcast delivery applied here — the copy was
	// rewritten (update) or tombstoned (delete) before fanning out to the
	// children list. Deliver hops parent onto the stop that forwarded to
	// them, so the trace reconstructs the fan-out tree.
	HopDeliver
	// HopRepair: the anti-entropy loop at this stop initiated a traced
	// exchange (a KindHas probe round, KindStore push, or KindDigest
	// sync); the root of a repair trace.
	HopRepair
	// HopEdge: the gateway edge admitted the request and stamped the trace
	// — always the first hop of a gateway-originated trace, carried with
	// PID GatewayPID so fabric hops correlate back to the edge.
	HopEdge
)

// String names the action.
func (a HopAction) String() string {
	switch a {
	case HopForward:
		return "forward"
	case HopFallback:
		return "fallback"
	case HopMigrate:
		return "migrate"
	case HopServe:
		return "serve"
	case HopLocate:
		return "locate"
	case HopFault:
		return "fault"
	case HopFanout:
		return "fanout"
	case HopDeliver:
		return "deliver"
	case HopRepair:
		return "repair"
	case HopEdge:
		return "edge"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// NoParent is the Parent value of a root hop — the stop where a trace
// began. PID 0 is a valid node, so the sentinel lives at the top of the
// range, far above any real PID (identifier widths cap out at m=32).
const NoParent = ^uint32(0)

// GatewayPID is the PID a gateway stamps on its edge hop. Gateways sit
// outside the identifier space, so the sentinel cannot collide with a
// fabric node; one below NoParent keeps both distinguishable.
const GatewayPID = ^uint32(0) - 1

// Hop is one stop of a traced route: which node handled the request, which
// stop forwarded to it (NoParent at the root), what it did with it, and
// how long it held it (from handler entry to the forward, or to the
// response for a serve). Parent pointers are PIDs, not indices, so hops
// collected concurrently from a fan-out merge in any order.
type Hop struct {
	PID    uint32
	Parent uint32
	Action HopAction
	Dur    time.Duration
}

// hopWire is one encoded Hop: PID u32, parent u32, action u8, duration
// i64 (ns).
const hopWire = 4 + 4 + 1 + 8

func appendHops(b []byte, hops []Hop) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(hops)))
	for _, h := range hops {
		b = binary.BigEndian.AppendUint32(b, h.PID)
		b = binary.BigEndian.AppendUint32(b, h.Parent)
		b = append(b, byte(h.Action))
		b = binary.BigEndian.AppendUint64(b, uint64(h.Dur))
	}
	return b
}

func takeHops(b []byte) ([]Hop, []byte, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if n > MaxHops || int(n)*hopWire > len(b) {
		return nil, nil, ErrCorrupt
	}
	if n == 0 {
		return nil, b, nil
	}
	hops := make([]Hop, n)
	for i := range hops {
		hops[i].PID = binary.BigEndian.Uint32(b)
		hops[i].Parent = binary.BigEndian.Uint32(b[4:])
		hops[i].Action = HopAction(b[8])
		hops[i].Dur = time.Duration(binary.BigEndian.Uint64(b[9:]))
		b = b[hopWire:]
	}
	return hops, b, nil
}

// Request is one node-to-node or client-to-node message.
type Request struct {
	Kind    Kind
	Flags   uint8
	Origin  uint32 // PID of the node the client first contacted
	Hops    uint32 // forwarding hops so far
	Subtree uint32 // §4: subtrees already tried (migration counter)
	Version uint64 // update/store version
	Name    string
	Data    []byte
	// TraceID identifies a traced request (FlagTrace); hops propagate it so
	// multi-peer logs of one route can be correlated. 0 when untraced.
	TraceID uint64
	// Path accumulates one Hop per stop of a traced request: each peer
	// appends its own record before forwarding, so the request carries its
	// route history to the serving node.
	Path []Hop
}

// Response answers a Request.
type Response struct {
	OK       bool
	ServedBy uint32
	Hops     uint32
	Version  uint64
	Err      string
	Data     []byte
	// Path is the completed route of a traced request: the request's
	// accumulated hops plus the serving node's own record. Intermediate
	// peers relay it back unchanged.
	Path []Hop
}

// Encoding errors.
var (
	ErrFrameTooLarge = errors.New("msg: frame exceeds limits")
	ErrCorrupt       = errors.New("msg: corrupt frame")
)

// appendUvarint-style fixed encodings keep the format trivially seekable.

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, d []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(d)))
	return append(b, d...)
}

func takeUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, ErrCorrupt
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

func takeUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrCorrupt
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

func takeString(b []byte, max int) (string, []byte, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return "", nil, err
	}
	if int(n) > max || int(n) > len(b) {
		return "", nil, ErrCorrupt
	}
	return string(b[:n]), b[n:], nil
}

func takeBytes(b []byte, max int) ([]byte, []byte, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if int(n) > max || int(n) > len(b) {
		return nil, nil, ErrCorrupt
	}
	out := make([]byte, n)
	copy(out, b[:n])
	return out, b[n:], nil
}

// AppendRequest encodes r onto b. The trace section (TraceID + Path)
// rides at the tail so the fixed 22-byte header layout predates it.
func AppendRequest(b []byte, r *Request) ([]byte, error) {
	if len(r.Name) > MaxName || len(r.Data) > MaxData || len(r.Path) > MaxHops {
		return nil, ErrFrameTooLarge
	}
	b = append(b, byte(r.Kind), r.Flags)
	b = binary.BigEndian.AppendUint32(b, r.Origin)
	b = binary.BigEndian.AppendUint32(b, r.Hops)
	b = binary.BigEndian.AppendUint32(b, r.Subtree)
	b = binary.BigEndian.AppendUint64(b, r.Version)
	b = appendString(b, r.Name)
	b = appendBytes(b, r.Data)
	b = binary.BigEndian.AppendUint64(b, r.TraceID)
	b = appendHops(b, r.Path)
	return b, nil
}

// DecodeRequest parses a request payload.
func DecodeRequest(b []byte) (*Request, error) {
	if len(b) < 2 {
		return nil, ErrCorrupt
	}
	r := &Request{Kind: Kind(b[0]), Flags: b[1]}
	b = b[2:]
	var err error
	if r.Origin, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if r.Hops, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if r.Subtree, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if r.Version, b, err = takeUint64(b); err != nil {
		return nil, err
	}
	if r.Name, b, err = takeString(b, MaxName); err != nil {
		return nil, err
	}
	if r.Data, b, err = takeBytes(b, MaxData); err != nil {
		return nil, err
	}
	if r.TraceID, b, err = takeUint64(b); err != nil {
		return nil, err
	}
	if r.Path, b, err = takeHops(b); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return r, nil
}

// AppendResponse encodes resp onto b.
func AppendResponse(b []byte, resp *Response) ([]byte, error) {
	if len(resp.Err) > MaxName || len(resp.Data) > MaxData || len(resp.Path) > MaxHops {
		return nil, ErrFrameTooLarge
	}
	ok := byte(0)
	if resp.OK {
		ok = 1
	}
	b = append(b, ok)
	b = binary.BigEndian.AppendUint32(b, resp.ServedBy)
	b = binary.BigEndian.AppendUint32(b, resp.Hops)
	b = binary.BigEndian.AppendUint64(b, resp.Version)
	b = appendString(b, resp.Err)
	b = appendBytes(b, resp.Data)
	b = appendHops(b, resp.Path)
	return b, nil
}

// DecodeResponse parses a response payload.
func DecodeResponse(b []byte) (*Response, error) {
	if len(b) < 1 {
		return nil, ErrCorrupt
	}
	resp := &Response{OK: b[0] == 1}
	b = b[1:]
	var err error
	if resp.ServedBy, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if resp.Hops, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if resp.Version, b, err = takeUint64(b); err != nil {
		return nil, err
	}
	if resp.Err, b, err = takeString(b, MaxName); err != nil {
		return nil, err
	}
	if resp.Data, b, err = takeBytes(b, MaxData); err != nil {
		return nil, err
	}
	if resp.Path, b, err = takeHops(b); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return resp, nil
}

// FrameIDBit marks a pipelined frame: when the high bit of the length
// word is set, an 8-byte request ID follows the word and precedes the
// payload. The extension is version-gated by construction — MaxFrame is
// far below 2^31, so a legacy decoder meeting an ID frame fails cleanly
// with ErrFrameTooLarge instead of misreading it, and a legacy frame
// (high bit clear) decodes identically under both readers. Pipelined
// peers correlate out-of-order responses by echoing the request's ID;
// frames without the bit keep the original one-at-a-time FIFO contract.
const FrameIDBit = 1 << 31

// frameIDWire is the encoded request ID: one uint64 after the length word.
const frameIDWire = 8

// WriteFrame writes one length-prefixed payload in the legacy (un-ID'd)
// framing.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readChunk bounds how much a frame read allocates ahead of the bytes
// that actually arrive. A frame's declared length is attacker-controlled:
// a malicious or corrupt peer can claim MaxFrame (16 MiB) and send
// nothing, so allocating the declared size up front would let cheap lies
// pin real memory. Pooled read buffers carry readChunk capacity, so every
// frame up to 64 KiB is a single io.ReadFull with no allocation; larger
// frames grow chunk-by-chunk as payload bytes arrive, capping the damage
// of a lying prefix at one chunk.
const readChunk = 64 << 10

// maxPooledBuf bounds the codec buffers kept in the pool, so one oversize
// frame does not pin megabytes behind the pool forever.
const maxPooledBuf = 1 << 20

// bufPool recycles encode and decode buffers across exchanges — the frame
// codec's per-request allocations were the hottest constant cost on the
// wire path. Buffers are returned only by this package: the decode paths
// copy every field out of the raw frame, so pooled memory never escapes.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, readChunk)
		return &b
	},
}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// readFrameHeader parses the length word (and the request ID of a
// pipelined frame) off the stream.
func readFrameHeader(r io.Reader) (n int, id uint64, hasID bool, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, false, err
	}
	word := binary.BigEndian.Uint32(hdr[:])
	hasID = word&FrameIDBit != 0
	n = int(word &^ FrameIDBit)
	if n > MaxFrame {
		return 0, 0, false, ErrFrameTooLarge
	}
	if hasID {
		var idw [frameIDWire]byte
		if _, err := io.ReadFull(r, idw[:]); err != nil {
			return 0, 0, false, err
		}
		id = binary.BigEndian.Uint64(idw[:])
	}
	return n, id, hasID, nil
}

// readFrameInto reads n payload bytes into buf, reusing its capacity. A
// frame within cap(buf) is one io.ReadFull; a larger one grows chunk by
// chunk so a lying length prefix cannot force a frame-sized allocation.
func readFrameInto(r io.Reader, buf []byte, n int) ([]byte, error) {
	if n <= cap(buf) {
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf = buf[:0]
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > readChunk {
			chunk = readChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// ReadFrame reads one length-prefixed payload, legacy or pipelined (a
// pipelined frame's request ID is discarded; use ReadRequestID /
// ReadResponseID to keep it). The returned slice is freshly allocated and
// owned by the caller.
func ReadFrame(r io.Reader) ([]byte, error) {
	n, _, _, err := readFrameHeader(r)
	if err != nil {
		return nil, err
	}
	return readFrameInto(r, nil, n)
}

// writeFramed encodes the header (ID'd when hasID), appends the payload
// via encode, and writes the whole frame with a single Write — one
// syscall, and no interleaving risk for concurrent writers that already
// serialize on a higher-level lock.
func writeFramed(w io.Writer, id uint64, hasID bool, encode func([]byte) ([]byte, error)) error {
	bp := getBuf()
	defer putBuf(bp)
	hdrLen := 4
	if hasID {
		hdrLen += frameIDWire
	}
	buf := append((*bp)[:0], make([]byte, hdrLen)...)
	buf, err := encode(buf)
	if err != nil {
		return err
	}
	payload := len(buf) - hdrLen
	if payload > MaxFrame {
		return ErrFrameTooLarge
	}
	word := uint32(payload)
	if hasID {
		word |= FrameIDBit
		binary.BigEndian.PutUint64(buf[4:], id)
	}
	binary.BigEndian.PutUint32(buf[:4], word)
	_, err = w.Write(buf)
	*bp = buf
	return err
}

// WriteRequest frames and writes one request in the legacy framing.
func WriteRequest(w io.Writer, r *Request) error {
	return writeFramed(w, 0, false, func(b []byte) ([]byte, error) { return AppendRequest(b, r) })
}

// WriteRequestID frames and writes one request in the pipelined framing,
// carrying id for out-of-order response correlation.
func WriteRequestID(w io.Writer, r *Request, id uint64) error {
	return writeFramed(w, id, true, func(b []byte) ([]byte, error) { return AppendRequest(b, r) })
}

// ReadRequest reads and decodes one request, legacy or pipelined (the
// request ID of a pipelined frame is discarded).
func ReadRequest(r io.Reader) (*Request, error) {
	req, _, _, err := ReadRequestID(r)
	return req, err
}

// ReadRequestID reads and decodes one request and reports the request ID
// of a pipelined frame (hasID false means a legacy frame: the sender
// expects responses in request order).
func ReadRequestID(r io.Reader) (*Request, uint64, bool, error) {
	n, id, hasID, err := readFrameHeader(r)
	if err != nil {
		return nil, 0, false, err
	}
	bp := getBuf()
	defer putBuf(bp)
	buf, err := readFrameInto(r, *bp, n)
	if err != nil {
		return nil, 0, false, err
	}
	*bp = buf[:0]
	req, err := DecodeRequest(buf)
	if err != nil {
		return nil, 0, false, err
	}
	return req, id, hasID, nil
}

// WriteResponse frames and writes one response in the legacy framing.
func WriteResponse(w io.Writer, resp *Response) error {
	return writeFramed(w, 0, false, func(b []byte) ([]byte, error) { return AppendResponse(b, resp) })
}

// WriteResponseID frames and writes one response in the pipelined
// framing, echoing the request's id.
func WriteResponseID(w io.Writer, resp *Response, id uint64) error {
	return writeFramed(w, id, true, func(b []byte) ([]byte, error) { return AppendResponse(b, resp) })
}

// ReadResponse reads and decodes one response, legacy or pipelined (the
// request ID of a pipelined frame is discarded).
func ReadResponse(r io.Reader) (*Response, error) {
	resp, _, _, err := ReadResponseID(r)
	return resp, err
}

// ReadResponseID reads and decodes one response and reports the echoed
// request ID of a pipelined frame.
func ReadResponseID(r io.Reader) (*Response, uint64, bool, error) {
	n, id, hasID, err := readFrameHeader(r)
	if err != nil {
		return nil, 0, false, err
	}
	bp := getBuf()
	defer putBuf(bp)
	buf, err := readFrameInto(r, *bp, n)
	if err != nil {
		return nil, 0, false, err
	}
	*bp = buf[:0]
	resp, err := DecodeResponse(buf)
	if err != nil {
		return nil, 0, false, err
	}
	return resp, id, hasID, nil
}
