package msg

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestDigestRoundTrip(t *testing.T) {
	buckets := []uint64{0, 1, 0xdeadbeefcafef00d, ^uint64(0)}
	b, err := AppendDigest(nil, buckets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDigest(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(buckets) {
		t.Fatalf("decoded %d buckets, want %d", len(got), len(buckets))
	}
	for i := range buckets {
		if got[i] != buckets[i] {
			t.Fatalf("bucket %d = %#x, want %#x", i, got[i], buckets[i])
		}
	}

	// Empty vectors are legal (a rejoined peer with nothing yet).
	b, err = AppendDigest(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err = DecodeDigest(b); err != nil || len(got) != 0 {
		t.Fatalf("empty digest: got %v, err %v", got, err)
	}
}

func TestDigestEntriesRoundTrip(t *testing.T) {
	entries := []DigestEntry{
		{Name: "a", Version: 0},
		{Name: "files/long/path.bin", Version: 42},
		{Name: "", Version: 7}, // empty names are the store's problem, not the codec's
	}
	b, err := AppendDigestEntries(nil, entries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDigestEntries(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestDigestLimits(t *testing.T) {
	// Encoders reject oversize inputs.
	if _, err := AppendDigest(nil, make([]uint64, MaxDigestBuckets+1)); err != ErrFrameTooLarge {
		t.Fatalf("oversize bucket vector: err = %v, want ErrFrameTooLarge", err)
	}
	if _, err := AppendDigestEntries(nil, make([]DigestEntry, MaxDigestEntries+1)); err != ErrFrameTooLarge {
		t.Fatalf("oversize entry list: err = %v, want ErrFrameTooLarge", err)
	}
	long := DigestEntry{Name: strings.Repeat("x", MaxName+1)}
	if _, err := AppendDigestEntries(nil, []DigestEntry{long}); err != ErrFrameTooLarge {
		t.Fatalf("oversize entry name: err = %v, want ErrFrameTooLarge", err)
	}

	// Decoders reject lying counts before allocating.
	huge := binary.BigEndian.AppendUint32(nil, MaxDigestBuckets+1)
	if _, err := DecodeDigest(huge); err != ErrCorrupt {
		t.Fatalf("over-limit bucket count: err = %v, want ErrCorrupt", err)
	}
	lie := binary.BigEndian.AppendUint32(nil, 100) // 100 buckets claimed, none sent
	if _, err := DecodeDigest(lie); err != ErrCorrupt {
		t.Fatalf("lying bucket count: err = %v, want ErrCorrupt", err)
	}
	if _, err := DecodeDigestEntries(binary.BigEndian.AppendUint32(nil, MaxDigestEntries+1)); err != ErrCorrupt {
		t.Fatalf("over-limit entry count: err = %v, want ErrCorrupt", err)
	}
	if _, err := DecodeDigestEntries(binary.BigEndian.AppendUint32(nil, 3)); err != ErrCorrupt {
		t.Fatalf("lying entry count: err = %v, want ErrCorrupt", err)
	}

	// Trailing garbage after a valid body is corrupt, same as every frame.
	ok, _ := AppendDigest(nil, []uint64{1, 2})
	if _, err := DecodeDigest(append(ok, 0xFF)); err != ErrCorrupt {
		t.Fatalf("trailing bytes after digest: err = %v, want ErrCorrupt", err)
	}
	okE, _ := AppendDigestEntries(nil, []DigestEntry{{Name: "a", Version: 1}})
	if _, err := DecodeDigestEntries(append(okE, 0xFF)); err != ErrCorrupt {
		t.Fatalf("trailing bytes after entries: err = %v, want ErrCorrupt", err)
	}
}

// FuzzDecodeDigest hammers the bucket-vector decoder with arbitrary
// bytes: never panic, never over-allocate, and anything accepted must
// re-encode to an equal decode.
func FuzzDecodeDigest(f *testing.F) {
	seed, _ := AppendDigest(nil, []uint64{1, 2, 3})
	f.Add(seed)
	empty, _ := AppendDigest(nil, nil)
	f.Add(empty)
	f.Add([]byte{})
	f.Add(binary.BigEndian.AppendUint32(nil, MaxDigestBuckets)) // huge claim, nothing sent
	f.Add(bytes.Repeat([]byte{0xFF}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		buckets, err := DecodeDigest(data)
		if err != nil {
			return
		}
		re, err := AppendDigest(nil, buckets)
		if err != nil {
			t.Fatalf("accepted digest failed to re-encode: %v", err)
		}
		again, err := DecodeDigest(re)
		if err != nil || len(again) != len(buckets) {
			t.Fatalf("digest not a fixpoint: %v / %v (err %v)", buckets, again, err)
		}
		for i := range buckets {
			if again[i] != buckets[i] {
				t.Fatalf("bucket %d not a fixpoint: %#x vs %#x", i, buckets[i], again[i])
			}
		}
	})
}

// FuzzDecodeDigestEntries mirrors FuzzDecodeDigest for the response side.
func FuzzDecodeDigestEntries(f *testing.F) {
	seed, _ := AppendDigestEntries(nil, []DigestEntry{{Name: "a", Version: 1}, {Name: "b", Version: 2}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(binary.BigEndian.AppendUint32(nil, MaxDigestEntries)) // huge claim, nothing sent
	f.Add(bytes.Repeat([]byte{0x00}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeDigestEntries(data)
		if err != nil {
			return
		}
		re, err := AppendDigestEntries(nil, entries)
		if err != nil {
			t.Fatalf("accepted entries failed to re-encode: %v", err)
		}
		again, err := DecodeDigestEntries(re)
		if err != nil || len(again) != len(entries) {
			t.Fatalf("entries not a fixpoint: %v / %v (err %v)", entries, again, err)
		}
		for i := range entries {
			if again[i] != entries[i] {
				t.Fatalf("entry %d not a fixpoint: %+v vs %+v", i, entries[i], again[i])
			}
		}
	})
}
