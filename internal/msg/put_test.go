package msg

import (
	"bytes"
	"testing"
)

func TestPutReqRoundTrip(t *testing.T) {
	for _, r := range []*PutReq{
		{Op: PutData, Token: 0, Offset: 0, TotalSize: 64, FileCRC: 1, ChunkCRC: 2, Chunk: make([]byte, 64)},
		{Op: PutData, Token: 9, Offset: 1 << 20, TotalSize: 4 << 20, ChunkCRC: 7, Chunk: make([]byte, 1<<20)},
		{Op: PutData, Token: 1, Offset: MaxFileSize - MaxPutChunkBytes, TotalSize: MaxFileSize, Chunk: make([]byte, MaxPutChunkBytes)},
		{Op: PutInsert, Token: 9, TotalSize: 4 << 20, FileCRC: 0xDEADBEEF},
		{Op: PutUpdate, Token: 9, TotalSize: 4 << 20, FileCRC: 0xDEADBEEF},
		{Op: PutAbort, Token: 9},
	} {
		b, err := AppendPutReq(nil, r)
		if err != nil {
			t.Fatalf("append %+v: %v", r.Op, err)
		}
		got, err := DecodePutReq(b)
		if err != nil {
			t.Fatalf("decode op %v: %v", r.Op, err)
		}
		if got.Op != r.Op || got.Token != r.Token || got.Offset != r.Offset ||
			got.TotalSize != r.TotalSize || got.FileCRC != r.FileCRC ||
			got.ChunkCRC != r.ChunkCRC || !bytes.Equal(got.Chunk, r.Chunk) {
			t.Fatalf("round trip mismatch for op %v", r.Op)
		}
	}
}

func TestPutReqBounds(t *testing.T) {
	for name, r := range map[string]*PutReq{
		"zero op":            {TotalSize: 8, Chunk: make([]byte, 8)},
		"unknown op":         {Op: PutAbort + 1, Token: 1},
		"empty data chunk":   {Op: PutData, TotalSize: 8},
		"chunk past total":   {Op: PutData, Offset: 4, TotalSize: 8, Chunk: make([]byte, 8)},
		"oversize total":     {Op: PutData, TotalSize: MaxFileSize + 1, Chunk: make([]byte, 8)},
		"oversize chunk":     {Op: PutData, TotalSize: MaxFileSize, Chunk: make([]byte, MaxPutChunkBytes+1)},
		"commit with chunk":  {Op: PutInsert, Token: 1, TotalSize: 8, Chunk: make([]byte, 8)},
		"commit w/o session": {Op: PutInsert, TotalSize: 8},
		"abort w/o session":  {Op: PutAbort},
	} {
		if _, err := AppendPutReq(nil, r); err == nil {
			t.Errorf("append accepted %s", name)
		}
	}
	// Decode must enforce the same bounds against a lying encoder.
	ok, err := AppendPutReq(nil, &PutReq{Op: PutData, TotalSize: 8, Chunk: make([]byte, 8)})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), ok...)
	bad[0] = byte(PutAbort + 7)
	if _, err := DecodePutReq(bad); err == nil {
		t.Error("decode accepted unknown op")
	}
	if _, err := DecodePutReq(append(append([]byte(nil), ok...), 0)); err == nil {
		t.Error("decode accepted trailing garbage")
	}
	if _, err := DecodePutReq(ok[:len(ok)-3]); err == nil {
		t.Error("decode accepted truncated chunk")
	}
	if _, err := DecodePutReq(nil); err == nil {
		t.Error("decode accepted empty payload")
	}
}

func TestNotifyReqRoundTrip(t *testing.T) {
	r := &NotifyReq{
		TotalSize: 40 << 20,
		FileCRC:   0xFEEDFACE,
		Sources: []Holder{
			{PID: 4, Addr: "127.0.0.1:7104", Version: 9},
			{PID: 12, Addr: "127.0.0.1:7112", Version: 9},
		},
	}
	b, err := AppendNotifyReq(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNotifyReq(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalSize != r.TotalSize || got.FileCRC != r.FileCRC || len(got.Sources) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range r.Sources {
		if got.Sources[i] != r.Sources[i] {
			t.Fatalf("source %d: %+v != %+v", i, got.Sources[i], r.Sources[i])
		}
	}
}

func TestNotifyReqBounds(t *testing.T) {
	src := []Holder{{PID: 1, Addr: "a", Version: 1}}
	for name, r := range map[string]*NotifyReq{
		"zero total":     {Sources: src},
		"oversize total": {TotalSize: MaxFileSize + 1, Sources: src},
		"no sources":     {TotalSize: 8},
		"too many":       {TotalSize: 8, Sources: make([]Holder, MaxHolders+1)},
	} {
		if _, err := AppendNotifyReq(nil, r); err == nil {
			t.Errorf("append accepted %s", name)
		}
	}
	ok, err := AppendNotifyReq(nil, &NotifyReq{TotalSize: 8, FileCRC: 1, Sources: src})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeNotifyReq(append(append([]byte(nil), ok...), 0)); err == nil {
		t.Error("decode accepted trailing garbage")
	}
	if _, err := DecodeNotifyReq(ok[:len(ok)-2]); err == nil {
		t.Error("decode accepted truncated sources")
	}
	bad := append([]byte(nil), ok...)
	for i := 0; i < 8; i++ {
		bad[i] = 0 // total size -> 0
	}
	if _, err := DecodeNotifyReq(bad); err == nil {
		t.Error("decode accepted zero total")
	}
}

// FuzzDecodePutReq exercises the staged-upload request codec: any input
// either fails cleanly or round-trips to identical bytes.
func FuzzDecodePutReq(f *testing.F) {
	open, _ := AppendPutReq(nil, &PutReq{Op: PutData, TotalSize: 64, FileCRC: 1, ChunkCRC: 2, Chunk: make([]byte, 64)})
	f.Add(open)
	commit, _ := AppendPutReq(nil, &PutReq{Op: PutUpdate, Token: 7, TotalSize: 64, FileCRC: 1})
	f.Add(commit)
	f.Add([]byte{})
	// Lying chunk-length prefix: declares 1 MiB, carries nothing.
	lie := make([]byte, putReqWire)
	lie[0] = byte(PutData)
	lie[putReqWire-3] = 0x10
	f.Add(lie)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodePutReq(data)
		if err != nil {
			return
		}
		re, err := AppendPutReq(nil, r)
		if err != nil {
			t.Fatalf("re-encode of decoded put req failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("put req not canonical")
		}
	})
}

// FuzzDecodeNotifyReq exercises the pull-propagation notify codec.
func FuzzDecodeNotifyReq(f *testing.F) {
	seed, _ := AppendNotifyReq(nil, &NotifyReq{
		TotalSize: 1 << 20, FileCRC: 3,
		Sources: []Holder{{PID: 1, Addr: "127.0.0.1:7101", Version: 4}},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 16)) // absurd sizes and count prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeNotifyReq(data)
		if err != nil {
			return
		}
		re, err := AppendNotifyReq(nil, r)
		if err != nil {
			t.Fatalf("re-encode of decoded notify failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("notify req not canonical")
		}
	})
}
