package msg

// The KindDigest payloads: the request's Data carries a bucket-hash
// digest of the sender's name set (a count-prefixed vector of uint64
// bucket folds), the response's Data the (name, version) entries the
// responder holds in buckets whose folds differ. Both directions follow
// the batch/trace decoding discipline — every nested length is checked
// against its limit and against the bytes actually present, a lying
// prefix is ErrCorrupt, never an allocation.

import "encoding/binary"

// DigestEntry is one (name, version) record of a digest response: a copy
// the responder holds that the requester should also hold.
type DigestEntry struct {
	Name    string
	Version uint64
}

// AppendDigest encodes a bucket-hash vector as a KindDigest request
// payload onto b. The bucket count is part of the payload so both sides
// agree on the fold partition without negotiation.
func AppendDigest(b []byte, buckets []uint64) ([]byte, error) {
	if len(buckets) > MaxDigestBuckets {
		return nil, ErrFrameTooLarge
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(buckets)))
	for _, h := range buckets {
		b = binary.BigEndian.AppendUint64(b, h)
	}
	return b, nil
}

// DecodeDigest parses a KindDigest request payload into its bucket-hash
// vector.
func DecodeDigest(b []byte) ([]uint64, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, err
	}
	if n > MaxDigestBuckets || int(n)*8 > len(b) {
		return nil, ErrCorrupt
	}
	buckets := make([]uint64, n)
	for i := range buckets {
		buckets[i] = binary.BigEndian.Uint64(b)
		b = b[8:]
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return buckets, nil
}

// AppendDigestEntries encodes a digest response payload onto b: the
// (name, version) records falling into differing buckets, capped at
// MaxDigestEntries per frame (the caller truncates; a later round picks
// up the rest once the transferred names stop diverging).
func AppendDigestEntries(b []byte, entries []DigestEntry) ([]byte, error) {
	if len(entries) > MaxDigestEntries {
		return nil, ErrFrameTooLarge
	}
	start := len(b)
	b = binary.BigEndian.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		if len(e.Name) > MaxName {
			return nil, ErrFrameTooLarge
		}
		b = appendString(b, e.Name)
		b = binary.BigEndian.AppendUint64(b, e.Version)
	}
	if len(b)-start > MaxData {
		return nil, ErrFrameTooLarge
	}
	return b, nil
}

// DecodeDigestEntries parses a digest response payload.
func DecodeDigestEntries(b []byte) ([]DigestEntry, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, err
	}
	if n > MaxDigestEntries {
		return nil, ErrCorrupt
	}
	entries := make([]DigestEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		var e DigestEntry
		if e.Name, b, err = takeString(b, MaxName); err != nil {
			return nil, err
		}
		if e.Version, b, err = takeUint64(b); err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return entries, nil
}
