package msg

// The chunked write-plane payloads (docs/ROUTING.md "write plane"): a
// KindPut request's Data carries one staged chunk or a commit/abort
// control frame, a KindNotify request's Data the transfer facts of a
// pull-based propagation leg. Both follow the fetch/digest decoding
// discipline — every nested length checked against its limit and against
// the bytes actually present, a lying prefix is ErrCorrupt, never an
// allocation.

import "encoding/binary"

// PutOp selects what a KindPut frame does with the staging session.
type PutOp uint8

// Put operations. A transfer opens with the first PutData chunk (token 0,
// offset 0), streams the rest under the returned token, and ends with
// exactly one commit or abort.
const (
	// PutData stages one chunk at Offset. The opening chunk (token 0)
	// declares TotalSize and FileCRC and creates the session; every later
	// chunk must restate them unchanged.
	PutData PutOp = iota + 1
	// PutInsert commits the assembled payload as a client insert: version
	// stamping and per-subtree placement follow the normal insert path.
	PutInsert
	// PutUpdate commits the assembled payload as a client update: version
	// stamping and children-list broadcast follow the normal update path.
	PutUpdate
	// PutAbort discards the session; nothing becomes visible or durable.
	PutAbort
)

// putReqWire is the fixed part of an encoded PutReq: op u8, token u64,
// offset u64, total u64, file CRC u32, chunk CRC u32, chunk length prefix
// u32. A chunk plus this overhead must fit the MaxData bound of the
// Request.Data field carrying it.
const putReqWire = 1 + 8 + 8 + 8 + 4 + 4 + 4

// MaxPutChunkBytes is the largest chunk one KindPut request can carry:
// the request Data bound minus the fixed PutReq framing.
const MaxPutChunkBytes = MaxData - putReqWire

// PutReq is one frame of a staged chunked upload. Token identifies the
// staging session at the receiving peer (0 opens one); TotalSize and
// FileCRC pin the transfer shape on every frame so a mismatched retry can
// never splice two payloads into one commit.
type PutReq struct {
	Op        PutOp
	Token     uint64
	Offset    uint64
	TotalSize uint64
	FileCRC   uint32
	ChunkCRC  uint32
	Chunk     []byte
}

func putReqSane(r *PutReq) bool {
	if r.Op < PutData || r.Op > PutAbort {
		return false
	}
	if r.TotalSize > MaxFileSize || r.Offset > MaxFileSize || len(r.Chunk) > MaxPutChunkBytes {
		return false
	}
	switch r.Op {
	case PutData:
		// A data frame must carry bytes that land inside the declared size.
		return len(r.Chunk) != 0 && r.Offset+uint64(len(r.Chunk)) <= r.TotalSize
	default:
		// Control frames carry no chunk and address an open session.
		return len(r.Chunk) == 0 && r.Token != 0
	}
}

// AppendPutReq encodes a KindPut request payload onto b.
func AppendPutReq(b []byte, r *PutReq) ([]byte, error) {
	if !putReqSane(r) {
		return nil, ErrFrameTooLarge
	}
	b = append(b, byte(r.Op))
	b = binary.BigEndian.AppendUint64(b, r.Token)
	b = binary.BigEndian.AppendUint64(b, r.Offset)
	b = binary.BigEndian.AppendUint64(b, r.TotalSize)
	b = binary.BigEndian.AppendUint32(b, r.FileCRC)
	b = binary.BigEndian.AppendUint32(b, r.ChunkCRC)
	b = appendBytes(b, r.Chunk)
	return b, nil
}

// DecodePutReq parses a KindPut request payload.
func DecodePutReq(b []byte) (*PutReq, error) {
	if len(b) < 1 {
		return nil, ErrCorrupt
	}
	r := &PutReq{Op: PutOp(b[0])}
	b = b[1:]
	var err error
	if r.Token, b, err = takeUint64(b); err != nil {
		return nil, err
	}
	if r.Offset, b, err = takeUint64(b); err != nil {
		return nil, err
	}
	if r.TotalSize, b, err = takeUint64(b); err != nil {
		return nil, err
	}
	if r.FileCRC, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if r.ChunkCRC, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if r.Chunk, b, err = takeBytes(b, MaxPutChunkBytes); err != nil {
		return nil, err
	}
	if len(b) != 0 || !putReqSane(r) {
		return nil, ErrCorrupt
	}
	return r, nil
}

// NotifyReq is the payload-free body of a pull-based propagation leg
// (KindNotify): the transfer shape of the new version — whose stamped
// version number rides the request's Version field — plus the pull
// sources already holding it, origin first. Each delivered holder pulls
// the body via KindFetch from a listed source, verifies FileCRC, and
// appends itself to Sources before fanning out, so later deliveries
// stripe across already-converged siblings.
type NotifyReq struct {
	TotalSize uint64
	FileCRC   uint32
	Sources   []Holder
}

func notifyReqSane(r *NotifyReq) bool {
	return r.TotalSize != 0 && r.TotalSize <= MaxFileSize &&
		len(r.Sources) != 0 && len(r.Sources) <= MaxHolders
}

// AppendNotifyReq encodes a KindNotify request payload onto b.
func AppendNotifyReq(b []byte, r *NotifyReq) ([]byte, error) {
	if !notifyReqSane(r) {
		return nil, ErrFrameTooLarge
	}
	b = binary.BigEndian.AppendUint64(b, r.TotalSize)
	b = binary.BigEndian.AppendUint32(b, r.FileCRC)
	return AppendHolders(b, r.Sources)
}

// DecodeNotifyReq parses a KindNotify request payload.
func DecodeNotifyReq(b []byte) (*NotifyReq, error) {
	r := &NotifyReq{}
	var err error
	if r.TotalSize, b, err = takeUint64(b); err != nil {
		return nil, err
	}
	if r.FileCRC, b, err = takeUint32(b); err != nil {
		return nil, err
	}
	if r.Sources, err = DecodeHolders(b); err != nil {
		return nil, err
	}
	if !notifyReqSane(r) {
		return nil, ErrCorrupt
	}
	return r, nil
}
