package chord

import (
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

func TestSuccessor(t *testing.T) {
	live := liveness.New(4)
	for _, p := range []bitops.PID{2, 5, 11} {
		live.SetLive(p)
	}
	r := New(4, live)
	cases := []struct {
		id   uint32
		want bitops.PID
	}{{0, 2}, {2, 2}, {3, 5}, {5, 5}, {6, 11}, {11, 11}, {12, 2}, {15, 2}}
	for _, c := range cases {
		if got := r.Successor(c.id); got != c.want {
			t.Fatalf("Successor(%d) = %d, want %d", c.id, got, c.want)
		}
	}
}

func TestLookupFindsOwner(t *testing.T) {
	rng := xrand.New(3)
	for _, m := range []int{4, 8, 10} {
		live := liveness.NewAllLive(m, bitops.Slots(m))
		workload.KillRandom(live, 0.4, bitops.PID(^uint32(0)), rng.Fork())
		r := New(m, live)
		pids := live.LivePIDs()
		for trial := 0; trial < 200; trial++ {
			from := pids[rng.Intn(len(pids))]
			key := uint32(rng.Intn(bitops.Slots(m)))
			owner, hops := r.Lookup(from, key)
			if want := r.Successor(key); owner != want {
				t.Fatalf("m=%d Lookup(%d from %d) = %d, want %d", m, key, from, owner, want)
			}
			if hops > 2*m {
				t.Fatalf("m=%d lookup took %d hops", m, hops)
			}
		}
	}
}

func TestLookupSelfOwned(t *testing.T) {
	live := liveness.NewAllLive(4, 16)
	r := New(4, live)
	// With every slot live, node n owns exactly key n.
	owner, hops := r.Lookup(7, 7)
	if owner != 7 || hops != 0 {
		t.Fatalf("Lookup(7 from 7) = %d in %d hops", owner, hops)
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	live := liveness.NewAllLive(10, 1024)
	r := New(10, live)
	rng := xrand.New(9)
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		from := bitops.PID(rng.Intn(1024))
		key := uint32(rng.Intn(1024))
		_, hops := r.Lookup(from, key)
		total += hops
	}
	avg := float64(total) / trials
	// Chord's expected path length is ~ (1/2) log2 N = 5 for N=1024.
	if avg < 2 || avg > 8 {
		t.Fatalf("average hops %v outside the expected logarithmic band", avg)
	}
	t.Logf("chord average hops over %d lookups: %.2f", trials, avg)
}

func TestSingleNodeRing(t *testing.T) {
	live := liveness.New(4)
	live.SetLive(9)
	r := New(4, live)
	owner, hops := r.Lookup(9, 3)
	if owner != 9 || hops > 1 {
		t.Fatalf("single-node lookup = %d in %d hops", owner, hops)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestEmptyRingPanics(t *testing.T) {
	r := New(4, liveness.New(4))
	defer func() {
		if recover() == nil {
			t.Fatal("empty ring lookup did not panic")
		}
	}()
	r.Lookup(0, 0)
}

func BenchmarkChordLookup(b *testing.B) {
	live := liveness.NewAllLive(10, 1024)
	r := New(10, live)
	rng := xrand.New(1)
	froms := make([]bitops.PID, 256)
	keys := make([]uint32, 256)
	for i := range froms {
		froms[i] = bitops.PID(rng.Intn(1024))
		keys[i] = uint32(rng.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(froms[i&255], keys[i&255])
	}
}
