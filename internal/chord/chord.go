// Package chord implements the lookup layer of Chord (Stoica et al.,
// SIGCOMM 2001) — successor rings with finger tables — as the related-work
// baseline the paper cites for its O(log N) lookup-bound comparison (§7).
// As the paper notes, Chord itself has no file replication mechanism; the
// reproduction uses this package only to compare lookup hop counts against
// the LessLog binomial trees (BenchmarkLookupHops* and the trace tool).
package chord

import (
	"sort"

	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
)

// Ring is an m-bit Chord ring over the live nodes of a status word, with
// fully built finger tables.
type Ring struct {
	m       int
	nodes   []bitops.PID                // live nodes, ascending
	index   map[bitops.PID]int          // PID -> position in nodes
	fingers map[bitops.PID][]bitops.PID // finger[i] = successor(n + 2^i)
}

// New builds the ring and every node's finger table.
func New(m int, live *liveness.Set) *Ring {
	bitops.CheckWidth(m)
	r := &Ring{
		m:       m,
		nodes:   live.LivePIDs(),
		index:   map[bitops.PID]int{},
		fingers: map[bitops.PID][]bitops.PID{},
	}
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i] < r.nodes[j] })
	for i, n := range r.nodes {
		r.index[n] = i
	}
	size := uint32(bitops.Slots(m))
	for _, n := range r.nodes {
		f := make([]bitops.PID, m)
		for i := 0; i < m; i++ {
			start := (uint32(n) + 1<<uint(i)) % size
			f[i] = r.Successor(start)
		}
		r.fingers[n] = f
	}
	return r
}

// Len returns the number of live nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Successor returns the first live node at or clockwise after id.
func (r *Ring) Successor(id uint32) bitops.PID {
	i := sort.Search(len(r.nodes), func(i int) bool { return uint32(r.nodes[i]) >= id })
	if i == len(r.nodes) {
		i = 0 // wrap around
	}
	return r.nodes[i]
}

// between reports whether x lies in the half-open ring interval (a, b].
func between(x, a, b uint32) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b // wrapped interval
}

// Lookup routes a query for key from node `from` using finger tables,
// returning the owning node (successor of key) and the number of
// forwarding hops. The hop count is O(log N) with high probability, the
// bound LessLog's binomial trees guarantee deterministically.
func (r *Ring) Lookup(from bitops.PID, key uint32) (owner bitops.PID, hops int) {
	if len(r.nodes) == 0 {
		panic("chord: empty ring")
	}
	n := from
	for {
		// A node owns the keys in (predecessor, self]; answer locally.
		if between(key, uint32(r.predecessorOf(n)), uint32(n)) || len(r.nodes) == 1 {
			return n, hops
		}
		succ := r.successorOf(n)
		if between(key, uint32(n), uint32(succ)) {
			if succ == n {
				return succ, hops
			}
			return succ, hops + 1
		}
		next := r.closestPreceding(n, key)
		if next == n {
			return succ, hops + 1
		}
		n = next
		hops++
	}
}

// predecessorOf returns the live node preceding n on the ring.
func (r *Ring) predecessorOf(n bitops.PID) bitops.PID {
	i, ok := r.index[n]
	if !ok {
		panic("chord: node not on ring")
	}
	return r.nodes[(i+len(r.nodes)-1)%len(r.nodes)]
}

// successorOf returns the live node following n on the ring.
func (r *Ring) successorOf(n bitops.PID) bitops.PID {
	i, ok := r.index[n]
	if !ok {
		panic("chord: node not on ring")
	}
	return r.nodes[(i+1)%len(r.nodes)]
}

// closestPreceding returns the finger of n closest to, but preceding, key.
func (r *Ring) closestPreceding(n bitops.PID, key uint32) bitops.PID {
	f := r.fingers[n]
	for i := len(f) - 1; i >= 0; i-- {
		x := uint32(f[i])
		if x != uint32(n) && betweenOpen(x, uint32(n), key) {
			return f[i]
		}
	}
	return n
}

// betweenOpen reports whether x lies in the open ring interval (a, b).
func betweenOpen(x, a, b uint32) bool {
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}
