package can

import (
	"math"
	"testing"

	"lesslog/internal/xrand"
)

func TestZonesPartitionSpace(t *testing.T) {
	for _, cfg := range []struct{ d, n int }{{1, 16}, {2, 64}, {2, 100}, {3, 128}} {
		nw := New(cfg.d, cfg.n, 7)
		if nw.Len() != cfg.n {
			t.Fatalf("d=%d n=%d: built %d zones", cfg.d, cfg.n, nw.Len())
		}
		// Volumes sum to 1.
		vol := 0.0
		for i := 0; i < nw.Len(); i++ {
			z := nw.Zone(i)
			v := 1.0
			for k := 0; k < cfg.d; k++ {
				if z.Lo[k] >= z.Hi[k] {
					t.Fatalf("degenerate zone %d: %v", i, z)
				}
				v *= z.Hi[k] - z.Lo[k]
			}
			vol += v
		}
		if math.Abs(vol-1) > 1e-9 {
			t.Fatalf("d=%d n=%d: total volume %v", cfg.d, cfg.n, vol)
		}
		// Every random point has exactly one owner.
		rng := xrand.New(3)
		for trial := 0; trial < 200; trial++ {
			p := nw.randomPoint(rng)
			owners := 0
			for i := 0; i < nw.Len(); i++ {
				if nw.Zone(i).Contains(p) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("point %v has %d owners", p, owners)
			}
		}
	}
}

func TestNeighborsSymmetricAndNonEmpty(t *testing.T) {
	nw := New(2, 64, 1)
	for i := range nw.neighbors {
		if len(nw.neighbors[i]) == 0 {
			t.Fatalf("zone %d has no neighbors", i)
		}
		for _, j := range nw.neighbors[i] {
			found := false
			for _, k := range nw.neighbors[j] {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor relation %d-%d not symmetric", i, j)
			}
		}
	}
}

func TestLookupFindsOwner(t *testing.T) {
	rng := xrand.New(5)
	for _, cfg := range []struct{ d, n int }{{2, 64}, {2, 256}, {3, 200}} {
		nw := New(cfg.d, cfg.n, 11)
		for trial := 0; trial < 300; trial++ {
			p := nw.randomPoint(rng)
			from := rng.Intn(nw.Len())
			owner, hops := nw.Lookup(from, p)
			if !nw.Zone(owner).Contains(p) {
				t.Fatalf("d=%d n=%d: lookup returned non-owner", cfg.d, cfg.n)
			}
			if hops > 6*cfg.n {
				t.Fatalf("hops %d absurd", hops)
			}
		}
	}
}

func TestLookupFromOwnerZeroHops(t *testing.T) {
	nw := New(2, 32, 2)
	p := []float64{0.3, 0.7}
	owner, _ := nw.Lookup(0, p)
	o2, hops := nw.Lookup(owner, p)
	if o2 != owner || hops != 0 {
		t.Fatalf("self lookup = (%d, %d)", o2, hops)
	}
}

func TestHopScalingMatchesTheory(t *testing.T) {
	// CAN's expected path length is Θ(d·N^(1/d)); at d=2, N=1024 that is
	// ~16 hops — an order of magnitude above the log₂N of LessLog and
	// Chord, which is the §7 comparison we reproduce.
	nw := New(2, 1024, 9)
	rng := xrand.New(13)
	total, trials := 0, 2000
	for i := 0; i < trials; i++ {
		_, hops := nw.Lookup(rng.Intn(1024), nw.randomPoint(rng))
		total += hops
	}
	avg := float64(total) / float64(trials)
	if avg < 8 || avg > 32 {
		t.Fatalf("d=2 N=1024 average hops %.1f outside the N^(1/2) band", avg)
	}
	t.Logf("CAN d=2 N=1024 average hops: %.2f", avg)
}

func TestPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch not caught")
		}
	}()
	New(2, 8, 1).Lookup(0, []float64{0.5})
}

func BenchmarkCANLookup(b *testing.B) {
	nw := New(2, 1024, 9)
	rng := xrand.New(1)
	points := make([][]float64, 256)
	froms := make([]int, 256)
	for i := range points {
		points[i] = nw.randomPoint(rng)
		froms[i] = rng.Intn(1024)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Lookup(froms[i&255], points[i&255])
	}
}
