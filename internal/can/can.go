// Package can implements the lookup layer of CAN, the Content-Addressable
// Network (Ratnasamy et al., SIGCOMM 2001) — the second related-work
// baseline the paper cites (§7): "CAN assigns nodes and files into a
// d-dimension space, and each node is responsible for files stored in a
// particular region." Like Chord, CAN has no replication mechanism; the
// reproduction uses it only for lookup hop-count comparisons, where CAN's
// O(d·N^(1/d)) routing contrasts with the O(log N) of LessLog's binomial
// trees.
//
// Construction follows the CAN join procedure: each arriving node picks a
// random point in the d-torus [0,1)^d and splits the zone owning it in
// half along its longest side. Routing is greedy: forward to the neighbor
// zone closest (in torus distance) to the target point.
package can

import (
	"fmt"

	"lesslog/internal/xrand"
)

// Zone is an axis-aligned box in the d-torus owned by one node.
type Zone struct {
	Lo, Hi []float64 // per-dimension bounds, Lo[i] < Hi[i]
	id     int
}

// ID returns the zone's index (its owning node).
func (z *Zone) ID() int { return z.id }

// Contains reports whether point p lies in the zone.
func (z *Zone) Contains(p []float64) bool {
	for i := range p {
		if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
			return false
		}
	}
	return true
}

// Network is a fully built CAN over n zones.
type Network struct {
	d         int
	zones     []*Zone
	neighbors [][]int
}

// New builds a d-dimensional CAN with n nodes using the random-point join
// procedure, then wires the neighbor sets.
func New(d, n int, seed uint64) *Network {
	if d < 1 || n < 1 {
		panic("can: need d >= 1 and n >= 1")
	}
	rng := xrand.New(seed)
	first := &Zone{Lo: make([]float64, d), Hi: make([]float64, d)}
	for i := 0; i < d; i++ {
		first.Hi[i] = 1
	}
	nw := &Network{d: d, zones: []*Zone{first}}
	for len(nw.zones) < n {
		p := nw.randomPoint(rng)
		owner := nw.owner(p)
		nw.split(owner)
	}
	nw.buildNeighbors()
	return nw
}

// Len returns the number of zones (nodes).
func (nw *Network) Len() int { return len(nw.zones) }

// D returns the dimensionality.
func (nw *Network) D() int { return nw.d }

// Zone returns zone i.
func (nw *Network) Zone(i int) *Zone { return nw.zones[i] }

func (nw *Network) randomPoint(rng *xrand.Rand) []float64 {
	p := make([]float64, nw.d)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// owner returns the zone containing p by linear scan; construction-time
// only.
func (nw *Network) owner(p []float64) *Zone {
	for _, z := range nw.zones {
		if z.Contains(p) {
			return z
		}
	}
	panic(fmt.Sprintf("can: point %v owned by no zone", p))
}

// split halves z along its longest side; the upper half becomes a new
// zone (the joining node).
func (nw *Network) split(z *Zone) {
	dim, width := 0, z.Hi[0]-z.Lo[0]
	for i := 1; i < nw.d; i++ {
		if w := z.Hi[i] - z.Lo[i]; w > width {
			dim, width = i, w
		}
	}
	mid := z.Lo[dim] + width/2
	upper := &Zone{
		Lo: append([]float64(nil), z.Lo...),
		Hi: append([]float64(nil), z.Hi...),
		id: len(nw.zones),
	}
	upper.Lo[dim] = mid
	z.Hi[dim] = mid
	nw.zones = append(nw.zones, upper)
}

// buildNeighbors wires zones that abut: touching along exactly one
// dimension (with torus wrap) and overlapping in every other.
func (nw *Network) buildNeighbors() {
	nw.neighbors = make([][]int, len(nw.zones))
	for i := range nw.zones {
		for j := i + 1; j < len(nw.zones); j++ {
			if nw.abut(nw.zones[i], nw.zones[j]) {
				nw.neighbors[i] = append(nw.neighbors[i], j)
				nw.neighbors[j] = append(nw.neighbors[j], i)
			}
		}
	}
}

// abut reports whether zones a and b share a (d-1)-dimensional face.
func (nw *Network) abut(a, b *Zone) bool {
	touch := 0
	for i := 0; i < nw.d; i++ {
		switch {
		case a.Hi[i] == b.Lo[i] || b.Hi[i] == a.Lo[i]:
			touch++
		case a.Hi[i] == 1 && b.Lo[i] == 0 && a.Lo[i] != 0:
			touch++ // torus wrap a→b
		case b.Hi[i] == 1 && a.Lo[i] == 0 && b.Lo[i] != 0:
			touch++ // torus wrap b→a
		case a.Lo[i] < b.Hi[i] && b.Lo[i] < a.Hi[i]:
			// open-interval overlap: fine, not a touch
		default:
			return false // disjoint in this dimension with a gap
		}
	}
	return touch == 1
}

// torusAxisDist returns the wraparound distance between coordinates.
func torusAxisDist(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// distToPoint returns the torus distance from zone z to point p: zero if
// contained, else the per-dimension clamp distance.
func (nw *Network) distToPoint(z *Zone, p []float64) float64 {
	total := 0.0
	for i := 0; i < nw.d; i++ {
		if p[i] >= z.Lo[i] && p[i] < z.Hi[i] {
			continue
		}
		dLo := torusAxisDist(p[i], z.Lo[i])
		dHi := torusAxisDist(p[i], z.Hi[i])
		if dLo < dHi {
			total += dLo
		} else {
			total += dHi
		}
	}
	return total
}

// Lookup greedily routes from zone `from` to the zone owning point p,
// returning the owner and the hop count. It panics on malformed points.
func (nw *Network) Lookup(from int, p []float64) (owner, hops int) {
	if len(p) != nw.d {
		panic("can: point dimensionality mismatch")
	}
	cur := nw.zones[from]
	for !cur.Contains(p) {
		best, bestDist := -1, nw.distToPoint(cur, p)
		for _, ni := range nw.neighbors[cur.id] {
			if d := nw.distToPoint(nw.zones[ni], p); d < bestDist {
				best, bestDist = ni, d
			}
		}
		if best < 0 {
			// No strictly closer neighbor: step to any neighbor
			// containing-side tie-break would complicate the greedy
			// model; in a well-formed CAN this cannot occur because some
			// abutting zone always reduces the clamp distance.
			panic("can: greedy routing stuck")
		}
		cur = nw.zones[best]
		hops++
	}
	return cur.id, hops
}
