// Package accesslog models the client-access logs that traditional
// (log-based) replication systems keep and analyze — the resource cost
// LessLog's whole design exists to avoid (paper §1: log-based approaches
// "consume extra system resources such as disk storage and memory. In
// addition, analyzing client-access logs is a both CPU-intensive and
// I/O-intensive task").
//
// A Log is a bounded per-file ring of access records (origin, last
// forwarder) as a system in the Plaxton/OceanStore mold would collect;
// Analyze folds it into the per-child forwarded-request counts a
// log-based method replicates by. The log-overhead experiment uses this
// package to put numbers on the storage the paper's comparison charges to
// the log-based baseline, and the tests prove Analyze agrees with the
// analytic simulator's oracle ForwardedLoad — i.e. our log-based baseline
// is exactly "perfect log analysis".
package accesslog

import (
	"fmt"
	"sort"

	"lesslog/internal/bitops"
)

// Entry is one recorded access: who originated the request and which
// child forwarded it into the logging node (equal when served directly).
type Entry struct {
	Origin    bitops.PID
	Forwarder bitops.PID
}

// entrySize is the in-memory footprint of one Entry in bytes.
const entrySize = 8

// Log is a bounded ring of entries for one file on one node. Storage
// grows with the recorded traffic (so Bytes reflects what the node really
// pays) up to the configured capacity, after which the oldest entries are
// overwritten.
type Log struct {
	capacity int
	entries  []Entry
	next     int
	full     bool
	total    uint64
}

// NewLog returns a log retaining up to capacity entries.
func NewLog(capacity int) *Log {
	if capacity < 1 {
		panic("accesslog: capacity must be positive")
	}
	return &Log{capacity: capacity}
}

// Append records one access, evicting the oldest entry when full.
func (l *Log) Append(e Entry) {
	l.total++
	if len(l.entries) < l.capacity {
		l.entries = append(l.entries, e)
		return
	}
	l.full = true
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.capacity
}

// Len returns the retained entry count.
func (l *Log) Len() int { return len(l.entries) }

// Total returns the number of accesses ever recorded, including evicted
// ones.
func (l *Log) Total() uint64 { return l.total }

// Bytes returns the log's in-memory footprint.
func (l *Log) Bytes() int { return cap(l.entries) * entrySize }

// Reset discards all entries, releasing their storage but keeping the
// capacity limit.
func (l *Log) Reset() {
	l.entries = nil
	l.next = 0
	l.full = false
}

// Analyze folds the retained entries into per-forwarder request counts —
// the table a log-based method consults to pick the child forwarding the
// most requests.
func (l *Log) Analyze() map[bitops.PID]int {
	counts := make(map[bitops.PID]int)
	for _, e := range l.entries {
		counts[e.Forwarder]++
	}
	return counts
}

// HottestForwarder returns the forwarder with the most retained entries,
// ties broken toward the lowest PID, and false when the log is empty.
func (l *Log) HottestForwarder() (bitops.PID, bool) {
	counts := l.Analyze()
	var best bitops.PID
	bestN := 0
	for p, n := range counts {
		if n > bestN || (n == bestN && bestN > 0 && p < best) {
			best, bestN = p, n
		}
	}
	return best, bestN > 0
}

// Recorder aggregates per-node, per-file logs and their total footprint —
// the system-wide bookkeeping a log-based deployment carries.
type Recorder struct {
	capacity int
	logs     map[bitops.PID]map[string]*Log
}

// NewRecorder returns a recorder creating per-file logs of the given
// capacity.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		panic("accesslog: capacity must be positive")
	}
	return &Recorder{capacity: capacity, logs: map[bitops.PID]map[string]*Log{}}
}

// Record appends an access at the serving node's log for name.
func (r *Recorder) Record(server bitops.PID, name string, e Entry) {
	byFile := r.logs[server]
	if byFile == nil {
		byFile = map[string]*Log{}
		r.logs[server] = byFile
	}
	l := byFile[name]
	if l == nil {
		l = NewLog(r.capacity)
		byFile[name] = l
	}
	l.Append(e)
}

// Log returns the log at server for name, or nil.
func (r *Recorder) Log(server bitops.PID, name string) *Log {
	return r.logs[server][name]
}

// Footprint sums the retained entries and bytes across every node.
func (r *Recorder) Footprint() (entries int, bytes int) {
	for _, byFile := range r.logs {
		for _, l := range byFile {
			entries += l.Len()
			bytes += l.Bytes()
		}
	}
	return entries, bytes
}

// Nodes returns the PIDs carrying at least one log, ascending.
func (r *Recorder) Nodes() []bitops.PID {
	out := make([]bitops.PID, 0, len(r.logs))
	for p := range r.logs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the recorder.
func (r *Recorder) String() string {
	e, b := r.Footprint()
	return fmt.Sprintf("accesslog{nodes=%d entries=%d bytes=%d}", len(r.logs), e, b)
}
