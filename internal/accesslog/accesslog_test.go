package accesslog

import (
	"strings"
	"testing"

	"lesslog/internal/bitops"
)

func TestAppendAndAnalyze(t *testing.T) {
	l := NewLog(10)
	for i := 0; i < 6; i++ {
		l.Append(Entry{Origin: bitops.PID(i), Forwarder: bitops.PID(i % 2)})
	}
	if l.Len() != 6 || l.Total() != 6 {
		t.Fatalf("len=%d total=%d", l.Len(), l.Total())
	}
	counts := l.Analyze()
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Entry{Forwarder: bitops.PID(i)})
	}
	if l.Len() != 4 || l.Total() != 10 {
		t.Fatalf("len=%d total=%d", l.Len(), l.Total())
	}
	counts := l.Analyze()
	// Only the last four (6,7,8,9) are retained.
	for _, old := range []bitops.PID{0, 5} {
		if counts[old] != 0 {
			t.Fatalf("evicted entry retained: %v", counts)
		}
	}
	for _, recent := range []bitops.PID{6, 9} {
		if counts[recent] != 1 {
			t.Fatalf("recent entry missing: %v", counts)
		}
	}
	if l.Bytes() != 4*entrySize {
		t.Fatalf("Bytes = %d", l.Bytes())
	}
}

func TestHottestForwarder(t *testing.T) {
	l := NewLog(16)
	if _, ok := l.HottestForwarder(); ok {
		t.Fatal("empty log reported a forwarder")
	}
	for i := 0; i < 5; i++ {
		l.Append(Entry{Forwarder: 7})
	}
	for i := 0; i < 3; i++ {
		l.Append(Entry{Forwarder: 2})
	}
	if p, ok := l.HottestForwarder(); !ok || p != 7 {
		t.Fatalf("hottest = %d, %v", p, ok)
	}
}

func TestReset(t *testing.T) {
	l := NewLog(4)
	l.Append(Entry{Forwarder: 1})
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset kept entries")
	}
	l.Append(Entry{Forwarder: 2})
	if l.Len() != 1 {
		t.Fatal("append after reset broken")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(8)
	r.Record(4, "f", Entry{Origin: 1, Forwarder: 5})
	r.Record(4, "f", Entry{Origin: 2, Forwarder: 5})
	r.Record(4, "g", Entry{Origin: 3, Forwarder: 6})
	r.Record(9, "f", Entry{Origin: 4, Forwarder: 9})
	entries, bytes := r.Footprint()
	if entries != 4 {
		t.Fatalf("footprint = %d entries", entries)
	}
	// Storage grows with traffic: at least one slot per retained entry,
	// never more than the three logs' full capacity.
	if bytes < entries*entrySize || bytes > 3*8*entrySize {
		t.Fatalf("bytes = %d outside [%d, %d]", bytes, entries*entrySize, 3*8*entrySize)
	}
	if l := r.Log(4, "f"); l == nil || l.Len() != 2 {
		t.Fatalf("log(4,f) = %+v", l)
	}
	if r.Log(4, "zzz") != nil || r.Log(99, "f") != nil {
		t.Fatal("missing logs should be nil")
	}
	nodes := r.Nodes()
	if len(nodes) != 2 || nodes[0] != 4 || nodes[1] != 9 {
		t.Fatalf("nodes = %v", nodes)
	}
	if !strings.Contains(r.String(), "entries=4") {
		t.Fatalf("String = %q", r.String())
	}
}

func TestCapacityPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"NewLog":      func() { NewLog(0) },
		"NewRecorder": func() { NewRecorder(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s(0) did not panic", name)
				}
			}()
			fn()
		}()
	}
}
