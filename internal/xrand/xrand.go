// Package xrand provides a tiny deterministic pseudo-random generator used
// by every randomized component of the reproduction (dead-node selection,
// locality hot sets, the random replication baseline, and the advanced
// model's proportional children-list choice).
//
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a single
// 64-bit state, passes BigCrush, and — unlike math/rand's source — its
// output sequence is fixed by this file alone, so experiment seeds recorded
// in EXPERIMENTS.md reproduce bit-for-bit on any Go release.
package xrand

// Rand is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; prefer New to make seeds explicit at call sites.
type Rand struct {
	state uint64
}

// New returns a generator with the given seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection; the
	// bias of plain modulo would be invisible at our n but is cheap to
	// remove.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place (Fisher–Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator from r's stream, so components can
// be handed private streams without coupling their consumption rates.
func (r *Rand) Fork() *Rand { return New(r.Uint64()) }

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}
