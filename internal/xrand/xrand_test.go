package xrand

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestKnownVector(t *testing.T) {
	// Reference values from the canonical SplitMix64 implementation with
	// seed 1234567; pins the stream across refactors.
	r := New(1234567)
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("step %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) returned %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < draws/10-draws/50 || c > draws/10+draws/50 {
			t.Fatalf("Intn(10) value %d drawn %d times of %d, badly skewed", v, c, draws)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 returned %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN)%257 + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.8) {
			hits++
		}
	}
	if frac := float64(hits) / draws; math.Abs(frac-0.8) > 0.01 {
		t.Fatalf("Bool(0.8) hit fraction %v", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(5)
	a := r.Fork()
	b := r.Fork()
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams start identically")
	}
}

func TestMul64MatchesBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		wantHi, wantLo := bits.Mul64(a, b)
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1024)
	}
	_ = sink
}
