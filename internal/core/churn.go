package core

import (
	"lesslog/internal/bitops"
	"lesslog/internal/liveness"
	"lesslog/internal/store"
)

// Join admits a new node at PID k (§5.1): k obtains the status word from a
// neighbor, every live node registers k as live, and the inserted files
// that other nodes held *because k was absent* are handed to k.
//
// The paper "copies" such files to the joining node; this implementation
// moves them (copy then delete at the old holder) to preserve the
// single-authoritative-copy-per-subtree invariant that the update
// broadcast and the leave/fail mechanisms rely on; see DESIGN.md.
func (c *Cluster) Join(k bitops.PID) error {
	if int(k) >= bitops.Slots(c.cfg.M) {
		return ErrPIDRange
	}
	if c.live.IsLive(k) {
		return ErrPIDInUse
	}
	// Obtain the status word from a neighboring live node (§5.1), then
	// register.
	var status *liveness.Set
	if c.live.LiveCount() > 0 {
		neighbor := c.live.LivePIDs()[0]
		status = c.nodes[neighbor].status.Clone()
	} else {
		status = liveness.New(c.cfg.M)
	}
	c.live.SetLive(k)
	status.SetLive(k)
	node := &Node{pid: k, store: store.New(), status: status}
	c.nodes[k] = node
	c.broadcastStatus(func(s *liveness.Set) { s.SetLive(k) })

	// Recover the files k must now hold: any inserted copy whose subtree
	// placement now selects k. (The paper walks all 2^m lookup trees; an
	// inserted copy exists only where a file does, so walking the files
	// visits exactly the trees that matter.)
	type move struct {
		from bitops.PID
		file store.File
	}
	var moves []move
	c.live.ForEachLive(func(j bitops.PID) {
		if j == k {
			return
		}
		st := c.nodes[j].store
		for _, name := range st.Names(store.Inserted) {
			v := c.view(c.Target(name))
			if v.SubtreeID(j) != v.SubtreeID(k) {
				continue
			}
			if h, ok := v.PrimaryHolder(v.SubtreeID(k)); ok && h == k {
				f, _ := st.Peek(name)
				moves = append(moves, move{from: j, file: f})
			}
		}
	})
	for _, mv := range moves {
		node.store.Put(mv.file, store.Inserted)
		c.nodes[mv.from].store.Delete(mv.file.Name)
		c.stats.FilesMigrated++
	}
	return nil
}

// Leave retires node k voluntarily (§5.2): k broadcasts its departure,
// discards its replicated files, and re-inserts each of its inserted files
// with itself registered dead, so every file keeps an authoritative copy
// in k's former subtree.
func (c *Cluster) Leave(k bitops.PID) error {
	n, ok := c.nodes[k]
	if !ok {
		return ErrNotLive
	}
	inserted := n.store.Names(store.Inserted)
	files := make([]store.File, 0, len(inserted))
	for _, name := range inserted {
		f, _ := n.store.Peek(name)
		files = append(files, f)
	}
	c.live.SetDead(k)
	delete(c.nodes, k)
	c.broadcastStatus(func(s *liveness.Set) { s.SetDead(k) })

	for _, f := range files {
		v := c.view(c.Target(f.Name))
		// The copy k held served k's own subtree; re-place it there.
		if h, ok := v.PrimaryHolder(v.SubtreeID(k)); ok {
			c.nodes[h].store.Put(f, store.Inserted)
			c.stats.FilesMigrated++
		}
		// No live node left in the subtree: the copy is lost there, but
		// with B > 0 the other subtrees still serve it (§4).
	}
	return nil
}

// Fail kills node k without warning (§5.3): its stored files are lost.
// Every live node registers k dead. With B > 0 the engine then restores
// the 2^B-copy invariant: for every file whose copy died with k, a live
// holder in another subtree supplies a fresh copy to k's former subtree.
// With B == 0 the lost inserted files simply fault on access.
func (c *Cluster) Fail(k bitops.PID) error {
	if _, ok := c.nodes[k]; !ok {
		return ErrNotLive
	}
	c.live.SetDead(k)
	delete(c.nodes, k)
	c.broadcastStatus(func(s *liveness.Set) { s.SetDead(k) })
	if c.cfg.B == 0 {
		return nil
	}

	// §5.3 recovery, driven from the surviving inserted copies: a file's
	// copy died with k exactly when, in its lookup tree, k's subtree
	// placement pointed at k (k outranked today's primary). The
	// surviving holder j in another subtree re-inserts it.
	type restore struct {
		to   bitops.PID
		file store.File
	}
	var restores []restore
	seen := map[string]bool{}
	c.live.ForEachLive(func(j bitops.PID) {
		st := c.nodes[j].store
		for _, name := range st.Names(store.Inserted) {
			if seen[name] {
				continue
			}
			v := c.view(c.Target(name))
			sidK := v.SubtreeID(k)
			if v.SubtreeID(j) == sidK {
				continue // j is in k's subtree; k did not hold this copy
			}
			h, ok := v.PrimaryHolder(sidK)
			if !ok {
				continue // k's subtree has no live node left
			}
			if v.SubtreeVID(k) <= v.SubtreeVID(h) {
				continue // k was not the subtree primary; its copy lives on
			}
			if c.nodes[h].store.Has(name) {
				continue // already restored from another subtree
			}
			seen[name] = true
			f, _ := st.Peek(name)
			restores = append(restores, restore{to: h, file: f})
		}
	})
	for _, rs := range restores {
		c.nodes[rs.to].store.Put(rs.file, store.Inserted)
		c.stats.FilesMigrated++
	}
	return nil
}
