package core

import (
	"lesslog/internal/bitops"
	"lesslog/internal/ptree"
	"lesslog/internal/replication"
	"lesslog/internal/store"
	"lesslog/internal/xrand"
)

// InsertResult reports where an insert placed its primary copies.
type InsertResult struct {
	Target  bitops.PID   // ψ(name)
	Holders []bitops.PID // one per subtree with a live node, 2^B at most
}

// Insert stores a file per ADVANCEDINSERTFILE (§3) extended to the
// fault-tolerant model (§4): in each of the 2^B subtrees of the target's
// lookup tree, the copy lands on the node FINDLIVENODE selects — the
// target itself when alive, else the live node with the most offspring.
func (c *Cluster) Insert(origin bitops.PID, name string, data []byte) (InsertResult, error) {
	if !c.live.IsLive(origin) {
		return InsertResult{}, ErrDeadOrigin
	}
	r := c.Target(name)
	v := c.view(r)
	c.version++
	f := store.File{Name: name, Data: data, Version: c.version}
	res := InsertResult{Target: r}
	for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(c.cfg.B)); sid++ {
		h, ok := v.PrimaryHolder(sid)
		if !ok {
			continue // the subtree has no live node
		}
		c.nodes[h].store.Put(f, store.Inserted)
		res.Holders = append(res.Holders, h)
		c.stats.InsertCopies++
	}
	if len(res.Holders) == 0 {
		return res, ErrNoLiveNode
	}
	c.stats.Inserts++
	return res, nil
}

// GetResult reports how a get was served.
type GetResult struct {
	File     store.File
	ServedBy bitops.PID
	Hops     int  // forwarding hops (0 when the origin held a copy)
	Fallback bool // §3 step 2: jumped to the FINDLIVENODE primary
	Migrated bool // §4: served from a different subtree
}

// Get resolves a file per GETFILE (§2.2) with the §3 dead-node
// augmentation and the §4 subtree migration: the request walks from the
// origin along live ancestors in the target's lookup tree until a copy is
// found; if the walk ends at a dead subtree root, it jumps to the
// FINDLIVENODE primary; if the origin's subtree has no copy at all, the
// request re-enters the next subtree by rewriting its subtree identifier.
func (c *Cluster) Get(origin bitops.PID, name string) (GetResult, error) {
	if !c.live.IsLive(origin) {
		return GetResult{}, ErrDeadOrigin
	}
	c.stats.Gets++
	r := c.Target(name)
	v := c.view(r)
	ownSID := v.SubtreeID(origin)
	if res, ok := c.getInSubtree(v, origin, name); ok {
		return res, nil
	}
	// §4: migrate the request to the remaining subtrees by changing the
	// subtree identifier while keeping the subtree VID.
	svid := v.SubtreeVID(origin)
	for d := 1; d < bitops.SubtreeCount(c.cfg.B); d++ {
		sid := (ownSID + bitops.VID(d)) & (bitops.VID(1)<<uint(c.cfg.B) - 1)
		entry := v.PID(bitops.ComposeVID(svid, sid, c.cfg.B))
		c.stats.GetMigrations++
		c.stats.GetHops++ // the cross-subtree jump itself
		if res, ok := c.getInSubtree(v, entry, name); ok {
			res.Migrated = true
			return res, nil
		}
	}
	c.stats.Faults++
	return GetResult{}, ErrNotFound
}

// getInSubtree walks one subtree's lookup path from entry (which may be a
// dead position; the walk then starts at its first live ancestor).
func (c *Cluster) getInSubtree(v ptree.View, entry bitops.PID, name string) (GetResult, bool) {
	var res GetResult
	hops := -1 // the first live stop is the origin itself, not a hop
	served := false
	last, found := v.RouteToFirst(entry, func(q bitops.PID) bool {
		hops++
		f, ok := c.nodes[q].store.Get(name)
		if ok {
			res = GetResult{File: f, ServedBy: q, Hops: hops}
			served = true
		}
		return ok
	})
	if hops < 0 {
		hops = 0 // entry position dead: its first live ancestor counts as hop 1
	}
	if served {
		c.stats.GetHops += uint64(res.Hops)
		return res, true
	}
	if found {
		return res, false // unreachable: found implies served
	}
	// The walk ended without a copy. If it never reached the subtree's
	// primary (dead root), take §3's second step.
	p, ok := v.PrimaryHolder(v.SubtreeID(entry))
	if !ok || p == last {
		c.stats.GetHops += uint64(hops)
		return res, false
	}
	hops++
	c.stats.GetFallbacks++
	f, ok := c.nodes[p].store.Get(name)
	c.stats.GetHops += uint64(hops)
	if !ok {
		return res, false
	}
	return GetResult{File: f, ServedBy: p, Hops: hops, Fallback: true}, true
}

// UpdateResult reports an update's propagation.
type UpdateResult struct {
	Target        bitops.PID
	CopiesUpdated int
	Messages      int
}

// Update rewrites a file and propagates the new contents top-down (§2.2,
// §3): in each subtree the broadcast starts at the root position —
// bypassing it to its expanded children list when dead — and every node
// holding a copy applies the update and re-broadcasts to its own children
// list, while nodes without a copy discard the request.
func (c *Cluster) Update(origin bitops.PID, name string, data []byte) (UpdateResult, error) {
	if !c.live.IsLive(origin) {
		return UpdateResult{}, ErrDeadOrigin
	}
	r := c.Target(name)
	v := c.view(r)
	c.version++
	res := UpdateResult{Target: r}
	for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(c.cfg.B)); sid++ {
		rootPos := v.SubtreeRoot(sid)
		if c.live.IsLive(rootPos) {
			res.CopiesUpdated += c.updateVisit(v, rootPos, name, data, &res.Messages)
			continue
		}
		for _, q := range v.ExpandedChildrenList(rootPos) {
			res.CopiesUpdated += c.updateVisit(v, q, name, data, &res.Messages)
		}
	}
	c.stats.UpdateMessages += uint64(res.Messages)
	if res.CopiesUpdated == 0 {
		return res, ErrNotFound
	}
	c.stats.Updates++
	return res, nil
}

// updateVisit delivers the update to live node p: a holder applies it and
// re-broadcasts to its expanded children list; a non-holder discards it.
func (c *Cluster) updateVisit(v ptree.View, p bitops.PID, name string, data []byte, msgs *int) int {
	*msgs++
	st := c.nodes[p].store
	if !st.Has(name) {
		return 0
	}
	n := 0
	if st.Update(name, data, c.version) {
		n = 1
	}
	for _, q := range v.ExpandedChildrenList(p) {
		n += c.updateVisit(v, q, name, data, msgs)
	}
	return n
}

// DeleteResult reports a delete's propagation.
type DeleteResult struct {
	Target        bitops.PID
	CopiesRemoved int
	Messages      int
}

// Delete removes a file from the system: every copy — the authoritative
// ones and all replicas — is erased by the same top-down children-list
// broadcast Update uses. (The paper defines no delete; this is the
// natural completion of its update mechanism and is documented as an
// extension in DESIGN.md.)
func (c *Cluster) Delete(origin bitops.PID, name string) (DeleteResult, error) {
	if !c.live.IsLive(origin) {
		return DeleteResult{}, ErrDeadOrigin
	}
	r := c.Target(name)
	v := c.view(r)
	res := DeleteResult{Target: r}
	for sid := bitops.VID(0); sid < bitops.VID(bitops.SubtreeCount(c.cfg.B)); sid++ {
		rootPos := v.SubtreeRoot(sid)
		if c.live.IsLive(rootPos) {
			res.CopiesRemoved += c.deleteVisit(v, rootPos, name, &res.Messages)
			continue
		}
		for _, q := range v.ExpandedChildrenList(rootPos) {
			res.CopiesRemoved += c.deleteVisit(v, q, name, &res.Messages)
		}
	}
	if res.CopiesRemoved == 0 {
		return res, ErrNotFound
	}
	return res, nil
}

// deleteVisit removes the copy at a holder and recurses down its children
// list; non-holders discard the request, exactly as in updateVisit.
func (c *Cluster) deleteVisit(v ptree.View, p bitops.PID, name string, msgs *int) int {
	*msgs++
	st := c.nodes[p].store
	if !st.Has(name) {
		return 0
	}
	n := 0
	// Recurse before deleting: the children list is liveness-shaped, not
	// content-shaped, so order does not matter, but counting does.
	for _, q := range v.ExpandedChildrenList(p) {
		n += c.deleteVisit(v, q, name, msgs)
	}
	if st.Delete(name) {
		n++
	}
	return n
}

// stratCtx adapts one file's copy placement to replication.Context so the
// engine shares the exact strategy implementation the simulator uses.
type stratCtx struct {
	c    *Cluster
	v    ptree.View
	name string
}

func (s stratCtx) View() ptree.View { return s.v }
func (s stratCtx) HasCopy(p bitops.PID) bool {
	n, ok := s.c.nodes[p]
	return ok && n.store.Has(s.name)
}
func (s stratCtx) ForwardedLoad(bitops.PID, bitops.PID) float64 { return 0 }
func (s stratCtx) Rand() *xrand.Rand                            { return s.c.rng }

// ReplicateFile implements REPLICATEFILE (§2.2, §3): the overloaded holder
// places one replica of name on the first node of its children list
// without a copy, with the advanced model's proportional escape when the
// holder is its subtree's live maximum. It returns the replica's location.
func (c *Cluster) ReplicateFile(holder bitops.PID, name string) (bitops.PID, error) {
	n, ok := c.nodes[holder]
	if !ok {
		return 0, ErrNotLive
	}
	f, ok := n.store.Peek(name)
	if !ok {
		return 0, ErrNotFound
	}
	v := c.view(c.Target(name))
	target, ok := (replication.LessLog{}).Place(stratCtx{c: c, v: v, name: name}, holder)
	if !ok {
		return 0, ErrNoLiveNode
	}
	c.nodes[target].store.Put(f, store.Replica)
	c.stats.ReplicasCreated++
	return target, nil
}

// Placement records one replica created by ReplicateHot.
type Placement struct {
	Holder  bitops.PID
	Name    string
	Replica bitops.PID
}

// ReplicateHot scans every live node and, for each whose hottest copy
// served more than threshold gets in the current counting window, places
// one replica of that file. It returns the placements made. Calling it
// periodically (with ResetWindow between windows) is the engine-level
// equivalent of the simulator's Balance loop.
func (c *Cluster) ReplicateHot(threshold uint64) []Placement {
	var out []Placement
	c.live.ForEachLive(func(p bitops.PID) {
		st := c.nodes[p].store
		var hotName string
		var hotHits uint64
		for _, name := range st.AllNames() {
			if h := st.Hits(name); h > hotHits {
				hotName, hotHits = name, h
			}
		}
		if hotHits <= threshold {
			return
		}
		if rep, err := c.ReplicateFile(p, hotName); err == nil {
			out = append(out, Placement{Holder: p, Name: hotName, Replica: rep})
		}
	})
	return out
}

// EvictCold removes, on every live node, the replicas that served fewer
// than minHits gets in the current window — the §6 counter-based removal
// mechanism. It returns the number of replicas dropped.
func (c *Cluster) EvictCold(minHits uint64) int {
	removed := 0
	c.live.ForEachLive(func(p bitops.PID) {
		st := c.nodes[p].store
		for _, name := range st.ColdReplicas(minHits) {
			st.Delete(name)
			removed++
			c.stats.ReplicasEvicted++
		}
	})
	return removed
}

// ResetWindow starts a new access-counting window on every live node.
func (c *Cluster) ResetWindow() {
	c.live.ForEachLive(func(p bitops.PID) { c.nodes[p].store.ResetHits() })
}
