package core

import (
	"fmt"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/xrand"
)

// benchCluster builds the paper-scale system with one hot file and n
// replicas along the children lists.
func benchCluster(b *testing.B, replicas int) *Cluster {
	b.Helper()
	c, err := New(Config{M: 10, InitialNodes: 1024, Hasher: hashring.Fixed(4), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Insert(0, "hot", []byte("x")); err != nil {
		b.Fatal(err)
	}
	holders := []bitops.PID{4}
	for len(holders) < replicas+1 {
		placed := false
		for _, h := range holders {
			rep, err := c.ReplicateFile(h, "hot")
			if err != nil {
				continue // this holder's children list is saturated
			}
			holders = append(holders, rep)
			placed = true
			break
		}
		if !placed {
			b.Fatalf("could not grow past %d holders", len(holders))
		}
	}
	return c
}

// BenchmarkUpdatePropagation measures the §2.2 top-down broadcast with 64
// replicas in the 1024-node system.
func BenchmarkUpdatePropagation(b *testing.B) {
	c := benchCluster(b, 64)
	payload := []byte("new contents")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Update(bitops.PID(i&1023), "hot", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoin measures node admission including the §5.1 file handoff
// scan over 512 stored files.
func BenchmarkJoin(b *testing.B) {
	c, err := New(Config{M: 10, InitialNodes: 1023, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if _, err := c.Insert(bitops.PID(i), fmt.Sprintf("f%d", i), []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Join(1023); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := c.Leave(1023); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkFailRecovery measures §5.3 recovery with B=2 over 256 files.
func BenchmarkFailRecovery(b *testing.B) {
	rng := xrand.New(5)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := New(Config{M: 8, B: 2, InitialNodes: 256, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 256; j++ {
			if _, err := c.Insert(bitops.PID(j), fmt.Sprintf("f%d", j), []byte("x")); err != nil {
				b.Fatal(err)
			}
		}
		victim := c.Live().LivePIDs()[rng.Intn(256)]
		b.StartTimer()
		if err := c.Fail(victim); err != nil {
			b.Fatal(err)
		}
	}
}
