package core

import (
	"errors"
	"fmt"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/store"
	"lesslog/internal/xrand"
)

func TestJoinValidation(t *testing.T) {
	c, _ := New(Config{M: 4, InitialNodes: 8, Seed: 1})
	if err := c.Join(3); !errors.Is(err, ErrPIDInUse) {
		t.Fatalf("join live PID: %v", err)
	}
	if err := c.Join(16); !errors.Is(err, ErrPIDRange) {
		t.Fatalf("join out of range: %v", err)
	}
	if err := c.Join(12); err != nil {
		t.Fatal(err)
	}
	if c.NodeCount() != 9 {
		t.Fatalf("node count = %d", c.NodeCount())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperJoinExample(t *testing.T) {
	// §5.1: P(4) and P(5) dead, 4 = ψ(f); ADVANCEDINSERTFILE put f on
	// P(6). When P(5) joins, f must be copied back to P(5) — P(5)'s VID
	// (1110) outranks P(6)'s (1101) in the tree of P(4).
	c, err := New(Config{M: 4, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Leave(4)
	c.Leave(5)
	c.Insert(0, "f", []byte("x"))
	if hs := c.HoldersOf("f"); len(hs) != 1 || hs[0] != 6 {
		t.Fatalf("pre-join holders = %v", hs)
	}
	if err := c.Join(5); err != nil {
		t.Fatal(err)
	}
	hs := c.HoldersOf("f")
	if len(hs) != 1 || hs[0] != 5 {
		t.Fatalf("post-join holders = %v, want [5]", hs)
	}
	n, _ := c.Node(5)
	if k, _ := n.Store().KindOf("f"); k != store.Inserted {
		t.Fatal("migrated copy not inserted-kind")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And gets still resolve.
	if g, err := c.Get(8, "f"); err != nil || g.ServedBy != 5 {
		t.Fatalf("get = %+v, %v", g, err)
	}
}

func TestJoinRootReclaimsFile(t *testing.T) {
	// When the target itself rejoins, it reclaims the file from the
	// stand-in primary.
	c, _ := New(Config{M: 4, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	c.Leave(4)
	c.Insert(0, "f", []byte("x"))
	pre := c.HoldersOf("f")
	if len(pre) != 1 || pre[0] == 4 {
		t.Fatalf("pre holders = %v", pre)
	}
	if err := c.Join(4); err != nil {
		t.Fatal(err)
	}
	if hs := c.HoldersOf("f"); len(hs) != 1 || hs[0] != 4 {
		t.Fatalf("post holders = %v, want [4]", hs)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveMigratesInsertedDiscardsReplicas(t *testing.T) {
	c, _ := New(Config{M: 4, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	c.Insert(0, "f", []byte("x"))
	rep, err := c.ReplicateFile(4, "f") // replica at P(5)
	if err != nil || rep != 5 {
		t.Fatalf("replica at P(%d), %v", rep, err)
	}
	// P(5) leaving discards its replica.
	if err := c.Leave(5); err != nil {
		t.Fatal(err)
	}
	if hs := c.HoldersOf("f"); len(hs) != 1 || hs[0] != 4 {
		t.Fatalf("holders after replica holder left = %v", hs)
	}
	// P(4) leaving migrates the inserted copy to the new primary.
	if err := c.Leave(4); err != nil {
		t.Fatal(err)
	}
	hs := c.HoldersOf("f")
	if len(hs) != 1 || hs[0] != 6 {
		t.Fatalf("holders after target left = %v, want [6]", hs)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g, err := c.Get(0, "f"); err != nil || g.ServedBy != 6 {
		t.Fatalf("get after leave = %+v, %v", g, err)
	}
	if err := c.Leave(5); !errors.Is(err, ErrNotLive) {
		t.Fatalf("double leave: %v", err)
	}
}

func TestFailLosesFilesWithoutFT(t *testing.T) {
	c, _ := New(Config{M: 4, B: 0, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	c.Insert(0, "f", []byte("x"))
	if err := c.Fail(4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(0, "f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after fail: %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultToleranceSurvivesFailure(t *testing.T) {
	// §4 with b=2: four copies; failing the origin-subtree holder must
	// not lose the file, and §5.3 recovery restores degree 4.
	c, err := New(Config{M: 6, B: 2, InitialNodes: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	name := "precious"
	res, err := c.Insert(0, name, []byte("keep me"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Holders) != 4 {
		t.Fatalf("holders = %v, want 4 copies", res.Holders)
	}
	if d := c.FaultToleranceDegreeOf(name); d != 4 {
		t.Fatalf("degree = %d", d)
	}
	// Fail one holder: the file must remain retrievable from everywhere
	// and recovery must restore the 4th copy inside the failed subtree.
	if err := c.Fail(res.Holders[0]); err != nil {
		t.Fatal(err)
	}
	if d := c.FaultToleranceDegreeOf(name); d != 4 {
		t.Fatalf("degree after fail+recovery = %d", d)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for origin := bitops.PID(0); origin < 64; origin += 7 {
		if !c.live.IsLive(origin) {
			continue
		}
		if _, err := c.Get(origin, name); err != nil {
			t.Fatalf("get from P(%d) after failure: %v", origin, err)
		}
	}
}

func TestSubtreeMigrationServesWholeDeadSubtree(t *testing.T) {
	// Kill every live node of one subtree except the requester's path:
	// gets from a subtree with no copy must migrate to another subtree.
	c, err := New(Config{M: 4, B: 1, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Insert(0, "f", []byte("x"))
	if err != nil || len(res.Holders) != 2 {
		t.Fatalf("insert = %+v, %v", res, err)
	}
	// Fail one subtree's holder; B=1 recovery restores a copy inside
	// that subtree, so instead drop it via a direct store delete to
	// simulate a missing copy and force migration.
	n, _ := c.Node(res.Holders[0])
	n.Store().Delete("f")
	v := c.view(4)
	var origin bitops.PID
	found := false
	c.live.ForEachLive(func(p bitops.PID) {
		if !found && v.SubtreeID(p) == v.SubtreeID(res.Holders[0]) && p != res.Holders[0] {
			origin, found = p, true
		}
	})
	if !found {
		t.Fatal("no origin in the holder's subtree")
	}
	g, err := c.Get(origin, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Migrated {
		t.Fatalf("get did not migrate: %+v", g)
	}
	if c.Stats().GetMigrations == 0 {
		t.Fatal("migration not counted")
	}
}

func TestFailRecoveryAcrossManyFiles(t *testing.T) {
	c, err := New(Config{M: 8, B: 2, InitialNodes: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := c.Insert(bitops.PID(i%256), fmt.Sprintf("file-%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	rng := xrand.New(2)
	for kill := 0; kill < 30; kill++ {
		pids := c.Live().LivePIDs()
		p := pids[rng.Intn(len(pids))]
		if err := c.Fail(p); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("after failing P(%d): %v", p, err)
		}
	}
	// Every file still retrievable after 30 sequential failures with
	// recovery between them.
	for i := 0; i < 100; i++ {
		origins := c.Live().LivePIDs()
		origin := origins[rng.Intn(len(origins))]
		if _, err := c.Get(origin, fmt.Sprintf("file-%d", i)); err != nil {
			t.Fatalf("file-%d lost: %v", i, err)
		}
	}
}

func TestRandomChurnPreservesInvariants(t *testing.T) {
	// Property test: any sequence of insert/get/update/replicate/join/
	// leave/fail keeps the structural invariants, and with B>0 every
	// file inserted while >=1 node was live in each subtree remains
	// retrievable across single-failure churn.
	rng := xrand.New(99)
	c, err := New(Config{M: 6, B: 1, InitialNodes: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	nextFile := 0
	for step := 0; step < 400; step++ {
		livePIDs := c.Live().LivePIDs()
		origin := livePIDs[rng.Intn(len(livePIDs))]
		switch op := rng.Intn(10); {
		case op < 3: // insert
			name := fmt.Sprintf("churn-%d", nextFile)
			nextFile++
			if _, err := c.Insert(origin, name, []byte(name)); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			names = append(names, name)
		case op < 6 && len(names) > 0: // get
			name := names[rng.Intn(len(names))]
			if _, err := c.Get(origin, name); err != nil {
				t.Fatalf("step %d get %s: %v", step, name, err)
			}
		case op < 7 && len(names) > 0: // update
			name := names[rng.Intn(len(names))]
			if _, err := c.Update(origin, name, []byte(fmt.Sprintf("v%d", step))); err != nil {
				t.Fatalf("step %d update %s: %v", step, name, err)
			}
		case op < 8 && len(names) > 0: // replicate from a current holder
			name := names[rng.Intn(len(names))]
			hs := c.HoldersOf(name)
			if len(hs) > 0 {
				c.ReplicateFile(hs[rng.Intn(len(hs))], name) // may legitimately fail when saturated
			}
		case op < 9: // join a dead PID if any
			for probe := 0; probe < 10; probe++ {
				p := bitops.PID(rng.Intn(c.Slots()))
				if !c.Live().IsLive(p) {
					if err := c.Join(p); err != nil {
						t.Fatalf("step %d join: %v", step, err)
					}
					break
				}
			}
		default: // leave or fail, keeping a healthy minimum
			if c.NodeCount() > 24 {
				p := livePIDs[rng.Intn(len(livePIDs))]
				if rng.Bool(0.5) {
					err = c.Leave(p)
				} else {
					err = c.Fail(p)
				}
				if err != nil {
					t.Fatalf("step %d leave/fail: %v", step, err)
				}
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// Endgame: every file must still be retrievable (B=1 plus immediate
	// recovery tolerates the single failures this test injects).
	livePIDs := c.Live().LivePIDs()
	for _, name := range names {
		origin := livePIDs[rng.Intn(len(livePIDs))]
		if _, err := c.Get(origin, name); err != nil {
			t.Fatalf("file %s lost after churn: %v", name, err)
		}
	}
	t.Logf("churn complete: %d files, %d nodes, stats %+v", len(names), c.NodeCount(), c.Stats())
}
