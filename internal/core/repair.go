package core

// Anti-entropy repair. The paper's top-down update broadcast reaches every
// replica that is connected to the root position through holders (§2.2),
// and our engine preserves that invariant under its own operations. Churn
// can still orphan a replica: if the holders between it and the root
// leave or fail, later updates no longer reach it. The paper leaves this
// open; Repair closes it with a sweep any deployment would run
// periodically — synchronize every copy of a file to the newest version
// and drop replicas whose file no longer exists.

import (
	"lesslog/internal/bitops"
	"lesslog/internal/store"
)

// RepairResult reports one repair sweep.
type RepairResult struct {
	FilesChecked    int
	StaleRewritten  int // replicas brought to the newest version
	OrphansDeleted  int // replicas of files with no authoritative copy
	MessagesRoughly int // one per holder visited
}

// Repair synchronizes all copies of name to the newest version present in
// the system. If no authoritative (inserted) copy survives anywhere, all
// replicas are dropped — the file is gone and serving stale bytes would
// be worse than faulting.
func (c *Cluster) Repair(name string) RepairResult {
	var res RepairResult
	res.FilesChecked = 1
	var newest store.File
	hasAuthority := false
	holders := c.HoldersOf(name)
	res.MessagesRoughly = len(holders)
	for _, h := range holders {
		st := c.nodes[h].store
		f, _ := st.Peek(name)
		if k, _ := st.KindOf(name); k == store.Inserted {
			hasAuthority = true
		}
		if f.Version > newest.Version {
			newest = f
		}
	}
	for _, h := range holders {
		st := c.nodes[h].store
		if !hasAuthority {
			if st.Delete(name) {
				res.OrphansDeleted++
			}
			continue
		}
		if st.Update(name, newest.Data, newest.Version) {
			res.StaleRewritten++
		}
	}
	return res
}

// RepairAll sweeps every file in the system.
func (c *Cluster) RepairAll() RepairResult {
	seen := map[string]bool{}
	var names []string
	c.live.ForEachLive(func(p bitops.PID) {
		for _, name := range c.nodes[p].store.AllNames() {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	})
	var total RepairResult
	for _, name := range names {
		r := c.Repair(name)
		total.FilesChecked += r.FilesChecked
		total.StaleRewritten += r.StaleRewritten
		total.OrphansDeleted += r.OrphansDeleted
		total.MessagesRoughly += r.MessagesRoughly
	}
	return total
}
