package core

import (
	"bytes"
	"testing"

	"lesslog/internal/hashring"
	"lesslog/internal/store"
)

// orphanReplica builds the churn pattern that strands a replica: a chain
// root -> P(5) -> P(7) of copies, then P(5) (the link) leaves, so updates
// starting at the root no longer pass through a holder to reach P(7).
func orphanReplica(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{M: 4, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(0, "f", []byte("v1"))
	if rep, err := c.ReplicateFile(4, "f"); err != nil || rep != 5 {
		t.Fatalf("replica 1 at P(%d), %v", rep, err)
	}
	if rep, err := c.ReplicateFile(5, "f"); err != nil || rep != 7 {
		t.Fatalf("replica 2 at P(%d), %v", rep, err)
	}
	if err := c.Leave(5); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOrphanedReplicaGoesStaleWithoutRepair(t *testing.T) {
	c := orphanReplica(t)
	// P(7) now sits below the departed P(5); updates from the root reach
	// it only if the expanded children list re-connects it. P(5)'s death
	// promotes P(7) into P(4)'s expanded list, so in THIS pattern the
	// update still reaches it — the paper's structure is self-healing
	// for single departures. Verify that, then build a genuinely
	// disconnected case below.
	c.Update(0, "f", []byte("v2"))
	n7, _ := c.Node(7)
	f, _ := n7.Store().Peek("f")
	if !bytes.Equal(f.Data, []byte("v2")) {
		t.Fatalf("single departure broke propagation: %q", f.Data)
	}
}

func TestRepairFixesManuallyStrandedReplica(t *testing.T) {
	c, err := New(Config{M: 4, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(0, "f", []byte("v1"))
	// Place a replica somewhere no broadcast will visit: P(15) is a leaf
	// of P(12)'s subtree; with no holder chain to it, updates discard at
	// P(12).
	n15, _ := c.Node(15)
	n15.Store().Put(store.File{Name: "f", Data: []byte("v1"), Version: 1}, store.Replica)
	c.Update(0, "f", []byte("v2"))
	f, _ := n15.Store().Peek("f")
	if !bytes.Equal(f.Data, []byte("v1")) {
		t.Fatalf("expected the stranded replica to be stale, got %q", f.Data)
	}
	res := c.Repair("f")
	if res.StaleRewritten != 1 {
		t.Fatalf("repair = %+v", res)
	}
	f, _ = n15.Store().Peek("f")
	if !bytes.Equal(f.Data, []byte("v2")) {
		t.Fatalf("replica still stale after repair: %q", f.Data)
	}
}

func TestRepairDropsOrphansWithoutAuthority(t *testing.T) {
	c, err := New(Config{M: 4, B: 0, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(0, "f", []byte("v1"))
	c.ReplicateFile(4, "f") // replica at P(5)
	// The authoritative holder fails with B=0: the file is gone, but the
	// replica at P(5) lingers and keeps serving.
	if err := c.Fail(4); err != nil {
		t.Fatal(err)
	}
	if g, err := c.Get(5, "f"); err != nil || g.ServedBy != 5 {
		t.Fatalf("lingering replica should still serve: %+v, %v", g, err)
	}
	res := c.RepairAll()
	if res.OrphansDeleted != 1 {
		t.Fatalf("repair = %+v", res)
	}
	if len(c.HoldersOf("f")) != 0 {
		t.Fatal("orphan survived repair")
	}
}

func TestRepairAllCountsFiles(t *testing.T) {
	c, _ := New(Config{M: 6, InitialNodes: 64, Seed: 1})
	for _, name := range []string{"a", "b", "c"} {
		c.Insert(0, name, []byte("x"))
	}
	res := c.RepairAll()
	if res.FilesChecked != 3 || res.StaleRewritten != 0 || res.OrphansDeleted != 0 {
		t.Fatalf("repair = %+v", res)
	}
}
