package core

import (
	"fmt"

	"lesslog/internal/bitops"
	"lesslog/internal/store"
)

// CheckInvariants verifies the structural invariants the engine maintains
// across file operations and churn, returning the first violation:
//
//  1. every live node's status word matches the ground truth (§5.1);
//  2. in each lookup tree and subtree, at most one *inserted* copy of a
//     file exists, and it sits exactly at the FINDLIVENODE placement —
//     the root position when alive, else the live node with the largest
//     subtree VID (the invariant that makes gets, updates and recovery
//     find the authoritative copy);
//  3. copies never sit on PIDs outside the live set.
//
// It is exercised by the property tests after randomized operation/churn
// sequences.
func (c *Cluster) CheckInvariants() error {
	// (1) status-word agreement.
	var statusErr error
	c.live.ForEachLive(func(p bitops.PID) {
		if statusErr != nil {
			return
		}
		n, ok := c.nodes[p]
		if !ok {
			statusErr = fmt.Errorf("core: live PID %d has no node", p)
			return
		}
		if !n.status.Equal(c.live) {
			statusErr = fmt.Errorf("core: P(%d) status word diverged from ground truth", p)
		}
	})
	if statusErr != nil {
		return statusErr
	}
	// (3) no orphan nodes.
	for p := range c.nodes {
		if !c.live.IsLive(p) {
			return fmt.Errorf("core: node map holds dead PID %d", p)
		}
	}
	// (2) placement of inserted copies, grouped per file and subtree.
	type key struct {
		name string
		sid  bitops.VID
	}
	holders := map[key][]bitops.PID{}
	c.live.ForEachLive(func(p bitops.PID) {
		st := c.nodes[p].store
		for _, name := range st.Names(store.Inserted) {
			v := c.view(c.Target(name))
			holders[key{name, v.SubtreeID(p)}] = append(holders[key{name, v.SubtreeID(p)}], p)
		}
	})
	for k, hs := range holders {
		if len(hs) > 1 {
			return fmt.Errorf("core: file %q has %d inserted copies in subtree %b: %v",
				k.name, len(hs), k.sid, hs)
		}
		v := c.view(c.Target(k.name))
		want, ok := v.PrimaryHolder(k.sid)
		if !ok {
			return fmt.Errorf("core: inserted copy of %q in dead subtree %b", k.name, k.sid)
		}
		if hs[0] != want {
			return fmt.Errorf("core: inserted copy of %q in subtree %b at P(%d), want P(%d)",
				k.name, k.sid, hs[0], want)
		}
	}
	return nil
}

// FaultToleranceDegreeOf returns how many subtrees currently hold an
// inserted copy of name — the achieved fault-tolerance degree, at most
// 2^B (§4).
func (c *Cluster) FaultToleranceDegreeOf(name string) int {
	v := c.view(c.Target(name))
	seen := map[bitops.VID]bool{}
	c.live.ForEachLive(func(p bitops.PID) {
		if k, ok := c.nodes[p].store.KindOf(name); ok && k == store.Inserted {
			seen[v.SubtreeID(p)] = true
		}
	})
	return len(seen)
}
