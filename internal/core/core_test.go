package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/store"
)

// paperCluster builds the 16-node system of the paper's examples with ψ
// pinned to target 4, so every test file lands in the Figure 2 tree.
func paperCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{M: 4, B: 0, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{M: 4, InitialNodes: 0}); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := New(Config{M: 4, InitialNodes: 17}); err == nil {
		t.Fatal("17 nodes in a 16-slot space accepted")
	}
	c, err := New(Config{M: 10, B: 2, InitialNodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if c.M() != 10 || c.B() != 2 || c.Slots() != 1024 || c.NodeCount() != 1024 {
		t.Fatalf("accessors wrong: m=%d b=%d slots=%d n=%d", c.M(), c.B(), c.Slots(), c.NodeCount())
	}
}

func TestInsertPlacesAtTarget(t *testing.T) {
	c := paperCluster(t)
	res, err := c.Insert(9, "f", []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != 4 || len(res.Holders) != 1 || res.Holders[0] != 4 {
		t.Fatalf("insert result = %+v", res)
	}
	n, _ := c.Node(4)
	if k, _ := n.Store().KindOf("f"); k != store.Inserted {
		t.Fatal("target does not hold an inserted copy")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGetFollowsPaperPath(t *testing.T) {
	c := paperCluster(t)
	if _, err := c.Insert(0, "f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// §2.1: a request at P(8) routes P(8) -> P(0) -> P(4): two hops.
	res, err := c.Get(8, "f")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != 4 || res.Hops != 2 || res.Fallback || res.Migrated {
		t.Fatalf("get = %+v", res)
	}
	// The target itself is served with zero hops.
	res, err = c.Get(4, "f")
	if err != nil || res.Hops != 0 || res.ServedBy != 4 {
		t.Fatalf("get at target = %+v, %v", res, err)
	}
}

func TestGetHopBound(t *testing.T) {
	c, err := New(Config{M: 10, InitialNodes: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(0, "bounded", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for p := bitops.PID(0); p < 1024; p += 13 {
		res, err := c.Get(p, "bounded")
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > 10 {
			t.Fatalf("get from P(%d) took %d hops, above the O(log N) bound m=10", p, res.Hops)
		}
	}
}

func TestGetMissingFaults(t *testing.T) {
	c := paperCluster(t)
	if _, err := c.Get(3, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if c.Stats().Faults != 1 {
		t.Fatalf("faults = %d", c.Stats().Faults)
	}
}

func TestDeadOriginRejected(t *testing.T) {
	c, _ := New(Config{M: 4, InitialNodes: 8, Seed: 1})
	if _, err := c.Get(12, "f"); !errors.Is(err, ErrDeadOrigin) {
		t.Fatalf("get: %v", err)
	}
	if _, err := c.Insert(12, "f", nil); !errors.Is(err, ErrDeadOrigin) {
		t.Fatalf("insert: %v", err)
	}
	if _, err := c.Update(12, "f", nil); !errors.Is(err, ErrDeadOrigin) {
		t.Fatalf("update: %v", err)
	}
}

func TestReplicateFileFollowsChildrenList(t *testing.T) {
	c := paperCluster(t)
	c.Insert(0, "hot", []byte("x"))
	// §2.2: P(4)'s children list is (P(5), P(6), P(0), P(12)).
	want := []bitops.PID{5, 6, 0, 12}
	for _, w := range want {
		got, err := c.ReplicateFile(4, "hot")
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("replica at P(%d), want P(%d)", got, w)
		}
		n, _ := c.Node(got)
		if k, _ := n.Store().KindOf("hot"); k != store.Replica {
			t.Fatal("copy not marked replica")
		}
	}
	if c.Stats().ReplicasCreated != 4 {
		t.Fatalf("ReplicasCreated = %d", c.Stats().ReplicasCreated)
	}
}

func TestReplicaHalvesServeCounts(t *testing.T) {
	// §2.2's halving guarantee at the request level: with one get from
	// every node, the first replica (at P(5), subtree of 8 positions)
	// takes exactly half the 16 requests.
	c := paperCluster(t)
	c.Insert(0, "hot", []byte("x"))
	if _, err := c.ReplicateFile(4, "hot"); err != nil {
		t.Fatal(err)
	}
	c.ResetWindow()
	for p := bitops.PID(0); p < 16; p++ {
		if _, err := c.Get(p, "hot"); err != nil {
			t.Fatal(err)
		}
	}
	n4, _ := c.Node(4)
	n5, _ := c.Node(5)
	if n4.Store().Hits("hot") != 8 || n5.Store().Hits("hot") != 8 {
		t.Fatalf("serve counts: P(4)=%d P(5)=%d, want 8/8",
			n4.Store().Hits("hot"), n5.Store().Hits("hot"))
	}
}

func TestReplicateHotAndEvict(t *testing.T) {
	c := paperCluster(t)
	c.Insert(0, "hot", []byte("x"))
	c.Insert(0, "cold", []byte("y"))
	for i := 0; i < 20; i++ {
		c.Get(8, "hot")
	}
	c.Get(8, "cold")
	placements := c.ReplicateHot(10)
	if len(placements) != 1 || placements[0].Name != "hot" || placements[0].Holder != 4 {
		t.Fatalf("placements = %+v", placements)
	}
	// New window: the replica serves nothing, then gets evicted.
	c.ResetWindow()
	if got := c.EvictCold(1); got != 1 {
		t.Fatalf("evicted %d, want 1", got)
	}
	if got := c.HoldersOf("hot"); len(got) != 1 || got[0] != 4 {
		t.Fatalf("holders after evict = %v", got)
	}
	if c.Stats().ReplicasEvicted != 1 {
		t.Fatal("eviction not counted")
	}
}

func TestUpdatePropagatesToAllReplicas(t *testing.T) {
	c := paperCluster(t)
	c.Insert(0, "f", []byte("v1"))
	// Build a two-level replica chain: root -> P(5) -> P(5)'s child.
	c.ReplicateFile(4, "f") // at P(5)
	c.ReplicateFile(5, "f") // into P(5)'s children list
	c.ReplicateFile(4, "f") // at P(6)
	holders := c.HoldersOf("f")
	if len(holders) != 4 {
		t.Fatalf("holders = %v", holders)
	}
	res, err := c.Update(9, "f", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesUpdated != 4 {
		t.Fatalf("updated %d of 4 copies", res.CopiesUpdated)
	}
	for _, h := range holders {
		n, _ := c.Node(h)
		f, _ := n.Store().Peek("f")
		if !bytes.Equal(f.Data, []byte("v2")) {
			t.Fatalf("stale copy at P(%d): %q", h, f.Data)
		}
	}
	// Non-holders discarded the request; messages stay bounded by one
	// per visited node.
	if res.Messages == 0 || res.Messages > 16 {
		t.Fatalf("messages = %d", res.Messages)
	}
}

func TestDeleteRemovesEveryCopy(t *testing.T) {
	c := paperCluster(t)
	c.Insert(0, "f", []byte("x"))
	c.ReplicateFile(4, "f") // P(5)
	c.ReplicateFile(5, "f") // P(5)'s child
	c.ReplicateFile(4, "f") // P(6)
	if len(c.HoldersOf("f")) != 4 {
		t.Fatal("setup failed")
	}
	res, err := c.Delete(9, "f")
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesRemoved != 4 {
		t.Fatalf("removed %d of 4", res.CopiesRemoved)
	}
	if hs := c.HoldersOf("f"); len(hs) != 0 {
		t.Fatalf("holders after delete = %v", hs)
	}
	if _, err := c.Get(3, "f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteWithFaultTolerance(t *testing.T) {
	c, err := New(Config{M: 6, B: 2, InitialNodes: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ins, _ := c.Insert(0, "f", []byte("x"))
	if len(ins.Holders) != 4 {
		t.Fatal("setup failed")
	}
	res, err := c.Delete(1, "f")
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesRemoved != 4 {
		t.Fatalf("removed %d of 4 subtree copies", res.CopiesRemoved)
	}
	if c.FaultToleranceDegreeOf("f") != 0 {
		t.Fatal("degree nonzero after delete")
	}
}

func TestDeleteMissing(t *testing.T) {
	c := paperCluster(t)
	if _, err := c.Delete(0, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	c2, _ := New(Config{M: 4, InitialNodes: 8, Seed: 1})
	if _, err := c2.Delete(12, "x"); !errors.Is(err, ErrDeadOrigin) {
		t.Fatalf("dead origin: %v", err)
	}
}

func TestUpdateMissingFaults(t *testing.T) {
	c := paperCluster(t)
	if _, err := c.Update(3, "ghost", []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestAdvancedInsertWithDeadTarget(t *testing.T) {
	// §3 worked example: P(4), P(5) dead, 4 = ψ(f): the file lands on
	// P(6), and every get is served by P(6).
	c, err := New(Config{M: 4, InitialNodes: 16, Hasher: hashring.Fixed(4), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(4); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(5); err != nil {
		t.Fatal(err)
	}
	res, err := c.Insert(0, "f", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Holders) != 1 || res.Holders[0] != 6 {
		t.Fatalf("holders = %v, want [6]", res.Holders)
	}
	for _, origin := range []bitops.PID{0, 1, 7, 8, 15} {
		g, err := c.Get(origin, "f")
		if err != nil {
			t.Fatalf("get from P(%d): %v", origin, err)
		}
		if g.ServedBy != 6 {
			t.Fatalf("get from P(%d) served by P(%d), want P(6)", origin, g.ServedBy)
		}
	}
	// Requests whose live-ancestor walk dies at the dead root take the
	// §3 two-step fallback.
	if c.Stats().GetFallbacks == 0 {
		t.Fatal("no get used the FINDLIVENODE fallback")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := paperCluster(t)
	c.Insert(0, "f", []byte("x"))
	c.Get(8, "f")
	c.Get(4, "f")
	st := c.Stats()
	if st.Gets != 2 || st.Inserts != 1 || st.InsertCopies != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.GetHops != 2 { // P(8) took 2 hops, P(4) took 0
		t.Fatalf("GetHops = %d", st.GetHops)
	}
	c.ResetStats()
	if c.Stats().Gets != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestHoldersOfAndTarget(t *testing.T) {
	c, _ := New(Config{M: 6, InitialNodes: 64, Seed: 1})
	name := "object-1"
	r := c.Target(name)
	if _, err := c.Insert(0, name, []byte("x")); err != nil {
		t.Fatal(err)
	}
	hs := c.HoldersOf(name)
	if len(hs) != 1 || hs[0] != r {
		t.Fatalf("holders = %v, target = %d", hs, r)
	}
}

func TestManyFilesInvariants(t *testing.T) {
	c, err := New(Config{M: 8, B: 0, InitialNodes: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		name := fmt.Sprintf("file-%d", i)
		if _, err := c.Insert(bitops.PID(i%200), name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every file is retrievable from every 17th origin.
	for i := 0; i < 300; i += 17 {
		name := fmt.Sprintf("file-%d", i)
		if _, err := c.Get(bitops.PID((i*7)%200), name); err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
	}
}
