package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/xrand"
)

// ftCluster builds an m=6, b=2, 64-node cluster with ψ pinned at target.
func ftCluster(t *testing.T, target bitops.PID) *Cluster {
	t.Helper()
	c, err := New(Config{M: 6, B: 2, InitialNodes: 64, Hasher: hashring.Fixed(target), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFTUpdateReachesAllSubtrees(t *testing.T) {
	c := ftCluster(t, 21)
	ins, err := c.Insert(0, "f", []byte("v1"))
	if err != nil || len(ins.Holders) != 4 {
		t.Fatalf("insert = %+v, %v", ins, err)
	}
	// Replicate inside two different subtrees, then update.
	c.ReplicateFile(ins.Holders[0], "f")
	c.ReplicateFile(ins.Holders[2], "f")
	res, err := c.Update(9, "f", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesUpdated != 6 {
		t.Fatalf("updated %d of 6 copies", res.CopiesUpdated)
	}
	for _, h := range c.HoldersOf("f") {
		n, _ := c.Node(h)
		f, _ := n.Store().Peek("f")
		if !bytes.Equal(f.Data, []byte("v2")) {
			t.Fatalf("stale copy at P(%d)", h)
		}
	}
}

func TestFTUpdateWithDeadSubtreeRoots(t *testing.T) {
	c := ftCluster(t, 21)
	ins, _ := c.Insert(0, "f", []byte("v1"))
	// Kill every subtree's root position so all broadcasts start from
	// expanded children lists.
	v := c.view(21)
	for sid := bitops.VID(0); sid < 4; sid++ {
		rootPos := v.SubtreeRoot(sid)
		if c.live.IsLive(rootPos) {
			if err := c.Fail(rootPos); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Update(c.Live().LivePIDs()[0], "f", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesUpdated != c.FaultToleranceDegreeOf("f") {
		t.Fatalf("updated %d copies, degree %d", res.CopiesUpdated, c.FaultToleranceDegreeOf("f"))
	}
	_ = ins
}

func TestFTGetCombinesFallbackAndMigration(t *testing.T) {
	// Empty one subtree of its copy AND kill the subtree root: a get
	// from inside must take the fallback, miss, migrate, and succeed.
	c := ftCluster(t, 21)
	ins, _ := c.Insert(0, "f", []byte("x"))
	v := c.view(21)
	victim := ins.Holders[0]
	sid := v.SubtreeID(victim)
	n, _ := c.Node(victim)
	n.Store().Delete("f") // lose the copy silently (bypasses recovery)
	// Also kill the subtree's root position when distinct and live.
	rootPos := v.SubtreeRoot(sid)
	if rootPos != victim && c.live.IsLive(rootPos) {
		c.Fail(rootPos)
	}
	var origin bitops.PID
	found := false
	c.live.ForEachLive(func(p bitops.PID) {
		if !found && c.view(21).SubtreeID(p) == sid {
			origin, found = p, true
		}
	})
	if !found {
		t.Skip("subtree emptied entirely")
	}
	g, err := c.Get(origin, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Migrated {
		t.Fatalf("get did not migrate: %+v", g)
	}
}

func TestFTChurnedDegreeNeverExceeds2B(t *testing.T) {
	c := ftCluster(t, 21)
	rng := xrand.New(8)
	for i := 0; i < 30; i++ {
		c.Insert(bitops.PID(rng.Intn(64)), fmt.Sprintf("f%d", i), []byte("x"))
	}
	for step := 0; step < 60; step++ {
		pids := c.Live().LivePIDs()
		switch {
		case c.NodeCount() > 24 && rng.Bool(0.5):
			c.Fail(pids[rng.Intn(len(pids))])
		case c.NodeCount() > 24 && rng.Bool(0.5):
			c.Leave(pids[rng.Intn(len(pids))])
		default:
			for probe := 0; probe < 10; probe++ {
				p := bitops.PID(rng.Intn(64))
				if !c.Live().IsLive(p) {
					c.Join(p)
					break
				}
			}
		}
		for i := 0; i < 30; i += 7 {
			if d := c.FaultToleranceDegreeOf(fmt.Sprintf("f%d", i)); d > 4 {
				t.Fatalf("step %d: degree %d exceeds 2^b", step, d)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// All files still retrievable.
	pids := c.Live().LivePIDs()
	for i := 0; i < 30; i++ {
		if _, err := c.Get(pids[rng.Intn(len(pids))], fmt.Sprintf("f%d", i)); err != nil {
			t.Fatalf("f%d lost: %v", i, err)
		}
	}
}

func TestGetAfterDeleteFaultsEverywhere(t *testing.T) {
	c := ftCluster(t, 21)
	c.Insert(0, "f", []byte("x"))
	if _, err := c.Delete(5, "f"); err != nil {
		t.Fatal(err)
	}
	for _, origin := range []bitops.PID{0, 17, 42, 63} {
		if _, err := c.Get(origin, "f"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get from P(%d) after delete: %v", origin, err)
		}
	}
}
