package core

import (
	"fmt"
	"testing"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/liveness"
	"lesslog/internal/loadsim"
	"lesslog/internal/workload"
	"lesslog/internal/xrand"
)

// TestEngineAgreesWithLoadsim drives the message-level engine with a
// discrete workload matching the analytic simulator's rate vector and
// requires the per-holder serve counts to coincide exactly. This is the
// bridge between deliverable (a) — the operational library — and
// deliverable (d) — the figure-regenerating simulator.
func TestEngineAgreesWithLoadsim(t *testing.T) {
	const m = 6
	const target = bitops.PID(21)
	for _, deadFrac := range []float64{0, 0.25} {
		deadFrac := deadFrac
		t.Run(fmt.Sprintf("dead=%.2f", deadFrac), func(t *testing.T) {
			live := liveness.NewAllLive(m, 64)
			if deadFrac > 0 {
				workload.KillRandom(live, deadFrac, target, xrand.New(4))
			}
			// Engine with the same liveness pattern.
			c, err := New(Config{M: m, InitialNodes: 64, Hasher: hashring.Fixed(target), Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			for p := bitops.PID(0); p < 64; p++ {
				if !live.IsLive(p) {
					if err := c.Fail(p); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := c.Insert(live.LivePIDs()[0], "hot", []byte("x")); err != nil {
				t.Fatal(err)
			}

			// Analytic side: 3 req/s per live node.
			rates := workload.Even(float64(3*live.LiveCount()), live)
			sim := loadsim.New(loadsim.Config{
				M: m, Target: target, Cap: 1e9, Live: live, Rates: rates, Seed: 1,
			})

			// Mirror a few replicas on both sides, then compare.
			holder := sim.Primaries()[0]
			for i := 0; i < 3; i++ {
				rep, err := c.ReplicateFile(holder, "hot")
				if err != nil {
					t.Fatal(err)
				}
				sim.AddReplica(rep)
				holder = rep
			}

			// Discrete side: 3 gets from every live node.
			c.ResetWindow()
			live.ForEachLive(func(p bitops.PID) {
				for i := 0; i < 3; i++ {
					if _, err := c.Get(p, "hot"); err != nil {
						t.Fatalf("get from P(%d): %v", p, err)
					}
				}
			})

			loads := sim.Loads()
			for _, h := range sim.Holders() {
				n, _ := c.Node(h)
				got := float64(n.Store().Hits("hot"))
				if got != loads[h] {
					t.Fatalf("holder P(%d): engine served %v, simulator says %v", h, got, loads[h])
				}
			}
		})
	}
}
