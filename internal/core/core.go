// Package core implements the operational LessLog cluster engine: the
// paper's file operations (§2.2), the advanced dead-node model (§3), the
// 2^b-way fault-tolerant model (§4) and the self-organized join / leave /
// fail mechanism (§5), at the level of individual requests between nodes.
//
// The engine simulates the peer-to-peer system in process: each node owns
// a local store and its own copy of the status word, and operations hop
// between nodes exactly as the paper's algorithms forward requests, with
// every hop and broadcast message counted. The analytic rate-level
// simulator used by the evaluation figures lives in internal/loadsim; the
// two are cross-checked in the tests. A wire-protocol deployment of the
// same node logic lives in internal/netnode.
package core

import (
	"errors"
	"fmt"

	"lesslog/internal/bitops"
	"lesslog/internal/hashring"
	"lesslog/internal/liveness"
	"lesslog/internal/ptree"
	"lesslog/internal/store"
	"lesslog/internal/xrand"
)

// Config parameterizes a cluster.
type Config struct {
	// M is the identifier width; the system has 2^M identifier slots.
	M int
	// B is the number of fault-tolerance bits (§4): every file is stored
	// in 2^B subtrees. 0 reproduces the basic/advanced models.
	B int
	// InitialNodes bootstraps PIDs 0..InitialNodes-1 as live.
	InitialNodes int
	// Hasher is ψ; nil selects hashring.Default.
	Hasher hashring.Hasher
	// Seed drives the proportional children-list choice (§3).
	Seed uint64
}

// Node is one peer: its local store and its own status word (§5.1).
type Node struct {
	pid    bitops.PID
	store  *store.Store
	status *liveness.Set
}

// PID returns the node's physical identifier.
func (n *Node) PID() bitops.PID { return n.pid }

// Store exposes the node's local store (read-mostly; the cluster engine
// owns mutation during operations).
func (n *Node) Store() *store.Store { return n.store }

// StatusWord returns the node's own copy of the status word.
func (n *Node) StatusWord() *liveness.Set { return n.status }

// Cluster is an in-process LessLog system.
type Cluster struct {
	cfg    Config
	hasher hashring.Hasher
	live   *liveness.Set // the ground-truth status word
	nodes  map[bitops.PID]*Node
	rng    *xrand.Rand

	version uint64 // logical clock for update propagation
	stats   Stats
}

// Stats counts the engine's traffic and outcomes.
type Stats struct {
	Gets            uint64 // get requests issued
	GetHops         uint64 // forwarding hops across all gets
	GetFallbacks    uint64 // §3 step-2 jumps to the FINDLIVENODE primary
	GetMigrations   uint64 // §4 cross-subtree migrations
	Faults          uint64 // gets that found no copy
	Inserts         uint64 // files inserted (counting one per file)
	InsertCopies    uint64 // primary copies created (2^B per insert)
	Updates         uint64 // update operations
	UpdateMessages  uint64 // update broadcast messages
	ReplicasCreated uint64 // copies placed by REPLICATEFILE
	ReplicasEvicted uint64 // cold replicas removed
	StatusMessages  uint64 // join/leave/fail status-word broadcasts
	FilesMigrated   uint64 // files moved by the §5 mechanism
}

// Common errors.
var (
	ErrNotFound   = errors.New("core: file not found (fault)")
	ErrDeadOrigin = errors.New("core: origin node is not live")
	ErrNoLiveNode = errors.New("core: no live node available")
	ErrPIDInUse   = errors.New("core: PID already in use")
	ErrPIDRange   = errors.New("core: PID outside the identifier space")
	ErrNotLive    = errors.New("core: node is not live")
)

// New builds a cluster with cfg.InitialNodes live nodes at PIDs
// 0..InitialNodes-1.
func New(cfg Config) (*Cluster, error) {
	bitops.CheckSplit(cfg.M, cfg.B)
	if cfg.InitialNodes < 1 || cfg.InitialNodes > bitops.Slots(cfg.M) {
		return nil, fmt.Errorf("core: initial node count %d outside [1, 2^m]", cfg.InitialNodes)
	}
	h := cfg.Hasher
	if h == nil {
		h = hashring.Default
	}
	c := &Cluster{
		cfg:    cfg,
		hasher: h,
		live:   liveness.NewAllLive(cfg.M, cfg.InitialNodes),
		nodes:  make(map[bitops.PID]*Node, cfg.InitialNodes),
		rng:    xrand.New(cfg.Seed),
	}
	for p := 0; p < cfg.InitialNodes; p++ {
		c.nodes[bitops.PID(p)] = &Node{
			pid:    bitops.PID(p),
			store:  store.New(),
			status: c.live.Clone(),
		}
	}
	return c, nil
}

// M returns the identifier width.
func (c *Cluster) M() int { return c.cfg.M }

// B returns the fault-tolerance bits.
func (c *Cluster) B() int { return c.cfg.B }

// Slots returns the identifier-space size 2^M.
func (c *Cluster) Slots() int { return bitops.Slots(c.cfg.M) }

// NodeCount returns the number of live nodes.
func (c *Cluster) NodeCount() int { return c.live.LiveCount() }

// Node returns the live node with the given PID.
func (c *Cluster) Node(p bitops.PID) (*Node, bool) {
	n, ok := c.nodes[p]
	return n, ok
}

// Live returns a snapshot of the ground-truth status word.
func (c *Cluster) Live() *liveness.Set { return c.live.Clone() }

// Stats returns a copy of the traffic counters.
func (c *Cluster) Stats() Stats { return c.stats }

// ResetStats zeroes the traffic counters.
func (c *Cluster) ResetStats() { c.stats = Stats{} }

// Target returns ψ(name), the file's target node.
func (c *Cluster) Target(name string) bitops.PID {
	return c.hasher.Target(name, c.cfg.M)
}

// view returns the lookup-tree view for the given target.
func (c *Cluster) view(target bitops.PID) ptree.View {
	return ptree.NewView(target, c.live, c.cfg.B)
}

// HoldersOf returns the live PIDs currently holding a copy of name,
// ascending — an introspection helper for tests, examples and tools.
func (c *Cluster) HoldersOf(name string) []bitops.PID {
	var out []bitops.PID
	c.live.ForEachLive(func(p bitops.PID) {
		if c.nodes[p].store.Has(name) {
			out = append(out, p)
		}
	})
	return out
}

// broadcastStatus applies fn to every live node's status word, modeling
// the §5.1 register broadcasts, and counts one message per recipient.
func (c *Cluster) broadcastStatus(fn func(s *liveness.Set)) {
	c.live.ForEachLive(func(p bitops.PID) {
		fn(c.nodes[p].status)
		c.stats.StatusMessages++
	})
}
