package gateway

// Tests for the gateway's locate-then-fetch data plane: hint reuse and
// write invalidation, the legacy relay downgrade latch, entry-peer-down
// hint purging, and the version-floor guarantee under concurrent reads
// and writes.

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/netnode"
)

// startLocateFabric boots an n-peer fabric with B replication bits and
// optional legacy (pre-locate) emulation, returning addresses PID-order
// plus the peers themselves.
func startLocateFabric(t testing.TB, m, b, n int, legacy bool) ([]string, []*netnode.Peer) {
	t.Helper()
	addrs := make(map[bitops.PID]string, n)
	peers := make([]*netnode.Peer, 0, n)
	for i := 0; i < n; i++ {
		p, err := netnode.Listen(netnode.Config{
			PID: bitops.PID(i), M: m, B: b, DisableLocate: legacy,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers = append(peers, p)
		addrs[bitops.PID(i)] = p.Addr()
	}
	flat := make([]string, n)
	for i, p := range peers {
		p.SetAddrs(addrs)
		flat[i] = addrs[bitops.PID(i)]
	}
	return flat, peers
}

func TestGatewayLocateDataPlane(t *testing.T) {
	addrs, _ := startLocateFabric(t, 4, 0, 16, false)
	// Cache disabled: every Get walks the data plane, so the hint counters
	// are observable per request. Floors stay enforced.
	g := newGateway(t, Config{Peers: addrs[:3], CacheSize: -1})
	if _, err := g.Insert("g/l", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Cold miss: one locate walk resolves the holder and leaves a hint.
	res, err := g.Get("g/l")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceFabric || !bytes.Equal(res.Data, []byte("v1")) {
		t.Fatalf("cold get = %+v", res)
	}
	c := g.Counters()
	if c.Locates.Value() != 1 || c.HintHits.Value() != 0 {
		t.Fatalf("cold counters: locates=%d hint_hits=%d, want 1/0",
			c.Locates.Value(), c.HintHits.Value())
	}
	if g.HintLen() != 1 {
		t.Fatalf("hint cache holds %d entries, want 1", g.HintLen())
	}

	// Warm miss: the hint answers without another locate.
	if _, err := g.Get("g/l"); err != nil {
		t.Fatal(err)
	}
	if c.Locates.Value() != 1 || c.HintHits.Value() != 1 {
		t.Fatalf("warm counters: locates=%d hint_hits=%d, want 1/1",
			c.Locates.Value(), c.HintHits.Value())
	}

	// An acknowledged update entered at the hinted holder refreshes the
	// hint in place (the ack proves the holder still carries the name, now
	// at the stamped version); the next read rides it without re-locating.
	wr, err := g.Update("g/l", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if g.HintLen() != 1 || c.HintRefreshes.Value() != 1 {
		t.Fatalf("post-update hint state: len=%d refreshes=%d, want 1/1",
			g.HintLen(), c.HintRefreshes.Value())
	}
	res, err = g.Get("g/l")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, []byte("v2")) || res.Version < wr.Version {
		t.Fatalf("post-update get = %+v, want v2 at version ≥ %d", res, wr.Version)
	}
	if c.Locates.Value() != 1 {
		t.Fatalf("post-update get re-located despite the refreshed hint (locates=%d)", c.Locates.Value())
	}

	// A delete still purges: the tombstoned copy proves nothing.
	if _, err := g.Delete("g/l"); err != nil {
		t.Fatal(err)
	}
	if g.HintLen() != 0 {
		t.Fatalf("hint survived the acknowledged delete (len=%d)", g.HintLen())
	}
}

func TestGatewayLegacyFallbackLatch(t *testing.T) {
	addrs, _ := startLocateFabric(t, 4, 0, 16, true) // pre-locate fabric
	g := newGateway(t, Config{Peers: addrs[:3], CacheSize: -1, DowngradeTTL: 50 * time.Millisecond})
	if _, err := g.Insert("g/legacy", []byte("old")); err != nil {
		t.Fatal(err)
	}

	// First miss probes locate, hits unknown-kind, latches, and relays.
	res, err := g.Get("g/legacy")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, []byte("old")) {
		t.Fatalf("get against legacy fabric = %+v", res)
	}
	c := g.Counters()
	// The cold miss probes both planes top-down — locate-set for the
	// chunked path, then locate — and each latches its own downgrade.
	if c.Locates.Value() != 2 || c.LocateFallbacks.Value() != 1 || c.ChunkDowngrades.Value() != 1 {
		t.Fatalf("downgrade counters: locates=%d fallbacks=%d chunk-downgrades=%d, want 2/1/1",
			c.Locates.Value(), c.LocateFallbacks.Value(), c.ChunkDowngrades.Value())
	}
	// Latched: the next miss relays without re-probing either plane.
	if _, err := g.Get("g/legacy"); err != nil {
		t.Fatal(err)
	}
	if c.Locates.Value() != 2 {
		t.Fatalf("latched miss re-probed locate (locates=%d)", c.Locates.Value())
	}
	// After the latches expire the gateway probes again (and re-latches).
	time.Sleep(60 * time.Millisecond)
	if _, err := g.Get("g/legacy"); err != nil {
		t.Fatal(err)
	}
	if c.Locates.Value() != 4 || c.LocateFallbacks.Value() != 2 || c.ChunkDowngrades.Value() != 2 {
		t.Fatalf("post-latch counters: locates=%d fallbacks=%d chunk-downgrades=%d, want 4/2/2",
			c.Locates.Value(), c.LocateFallbacks.Value(), c.ChunkDowngrades.Value())
	}
}

// TestGatewayHintPurgeOnPeerDown covers the reroute bound: when the entry
// detector declares a peer dead, every route hint pointing at it is purged
// at once, and the next read resolves the surviving replica instead of
// burning a failed direct fetch per hinted name.
func TestGatewayHintPurgeOnPeerDown(t *testing.T) {
	addrs, peers := startLocateFabric(t, 4, 1, 16, false) // B=1: two copies
	g := newGateway(t, Config{Peers: addrs, CacheSize: -1})
	if _, err := g.Insert("g/ha", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	res, err := g.Get("g/ha") // warm the hint
	if err != nil {
		t.Fatal(err)
	}
	holder := int(res.ServedBy)
	if g.HintLen() != 1 {
		t.Fatalf("hint cache holds %d entries, want 1", g.HintLen())
	}

	// The hinted holder dies. Mark it dead fabric-wide through the peers'
	// own detectors (routing routes around it immediately), close it, and
	// let the gateway's entry detector reach its threshold.
	for _, p := range peers {
		if int(p.PID()) == holder {
			continue
		}
		th := p.Transport().Config().FailThreshold
		for i := 0; i < th; i++ {
			p.Detector().Fail(uint32(holder))
		}
	}
	peers[holder].Close()
	for i := 0; i < g.Transport().Config().FailThreshold; i++ {
		g.Detector().Fail(uint32(holder))
	}
	// The dead holder is pruned from every hinted replica set; the set
	// itself survives with the remaining copy, so the next read reroutes
	// without even paying a re-locate (pre-PR-9, single-holder hints were
	// dropped wholesale here and HintLen went to 0).
	if g.HintLen() != 1 {
		t.Fatalf("peer-down left %d hint entries, want the pruned survivor set", g.HintLen())
	}

	// The next read lands on the surviving copy.
	res, err = g.Get("g/ha")
	if err != nil {
		t.Fatal(err)
	}
	if int(res.ServedBy) == holder || !bytes.Equal(res.Data, []byte("survives")) {
		t.Fatalf("post-failure get = %+v, want the surviving replica", res)
	}
}

// TestGatewayFloorUnderConcurrentWrites races reads against acknowledged
// writes through the data plane (hints filling, purging, direct fetches)
// and asserts the gateway's guarantee: no read returns data older than a
// write the gateway had already acknowledged when the read began.
func TestGatewayFloorUnderConcurrentWrites(t *testing.T) {
	addrs, _ := startLocateFabric(t, 4, 0, 8, false)
	g := newGateway(t, Config{Peers: addrs[:2], CacheSize: -1})
	if _, err := g.Insert("g/floor", []byte("v0")); err != nil {
		t.Fatal(err)
	}

	var acked atomic.Uint64 // last version the writer saw acknowledged
	const rounds, readers = 25, 4
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			wr, err := g.Update("g/floor", []byte(fmt.Sprintf("v%d", i+1)))
			if err != nil {
				t.Error(err)
				return
			}
			acked.Store(wr.Version)
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds*2; i++ {
				floor := acked.Load()
				res, err := g.Get("g/floor")
				if err != nil {
					t.Error(err)
					return
				}
				if res.Version < floor {
					t.Errorf("read returned version %d, acknowledged floor was %d", res.Version, floor)
					return
				}
			}
		}()
	}
	wg.Wait()
}
