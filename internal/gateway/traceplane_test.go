package gateway

import (
	"encoding/json"
	"net/http"
	"testing"

	"lesslog/internal/msg"
	"lesslog/internal/netnode"
	"lesslog/internal/tracering"
)

// TestGatewayTracedWriteAssemblesEdgeTrace drives a client-traced update
// through the gateway's wire server and expects one contiguous trace:
// the gateway's HopEdge root, the entry peer's HopFanout parented on the
// gateway, and one HopDeliver per replica — edge to holder in one route.
func TestGatewayTracedWriteAssemblesEdgeTrace(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	g := newGateway(t, Config{Peers: addrs[:3]})
	srv, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cl := netnode.NewClient(srv.Addr())
	if err := cl.Insert("tw/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	n, path, err := cl.UpdateTraced("tw/f", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("traced update reached %d copies", n)
	}
	if len(path) < 3 {
		t.Fatalf("trace = %v, want edge + fan-out + delivery hops", path)
	}
	if path[0].PID != msg.GatewayPID || path[0].Action != msg.HopEdge || path[0].Parent != msg.NoParent {
		t.Fatalf("trace root = %+v, want HopEdge at the gateway", path[0])
	}
	if path[1].Action != msg.HopFanout || path[1].Parent != msg.GatewayPID {
		t.Fatalf("fan-out hop = %+v, want HopFanout parented on the gateway", path[1])
	}
	delivers := 0
	for _, h := range path {
		if h.Action == msg.HopDeliver {
			delivers++
		}
	}
	if delivers != n {
		t.Fatalf("trace has %d HopDeliver hops for %d updated copies", delivers, n)
	}
	// The gateway keeps its own copy of the trace in the edge ring.
	snap := g.TraceSnapshot()
	if snap.Recorded == 0 || len(snap.Recent) == 0 {
		t.Fatalf("gateway ring after traced write = %+v", snap)
	}
	found := false
	for _, tr := range snap.Recent {
		if tr.Kind == "update" && tr.Name == "tw/f" && len(tr.Hops) == len(path) {
			found = true
		}
	}
	if !found {
		t.Fatalf("edge ring holds no matching update trace: %+v", snap.Recent)
	}
}

// TestGatewayPromotionInvisible pins the edge sampler to 1-in-1: every
// request is promoted to a trace, but clients that did not ask for one
// must never see a route on their responses.
func TestGatewayPromotionInvisible(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	g := newGateway(t, Config{Peers: addrs[:3], TraceSampleEvery: 1})
	srv, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	resp, err := netnode.Call(srv.Addr(), &msg.Request{Kind: msg.KindInsert, Name: "pi/f", Data: []byte("x")})
	if err != nil || !resp.OK {
		t.Fatalf("insert through gateway: %+v, %v", resp, err)
	}
	if resp.Path != nil {
		t.Fatalf("promoted insert leaked its route to the client: %v", resp.Path)
	}
	got, err := netnode.Call(srv.Addr(), &msg.Request{Kind: msg.KindGet, Name: "pi/f"})
	if err != nil || !got.OK {
		t.Fatalf("get through gateway: %+v, %v", got, err)
	}
	if got.Path != nil {
		t.Fatalf("promoted get leaked its route to the client: %v", got.Path)
	}
	snap := g.TraceSnapshot()
	if snap.Recorded < 2 {
		t.Fatalf("edge ring recorded %d traces, want both promoted requests", snap.Recorded)
	}
	// The promoted write went out fully traced; the promoted get stays an
	// edge-only record so it keeps the cache/coalescer path.
	var write, get *tracering.Trace
	for i := range snap.Recent {
		switch snap.Recent[i].Kind {
		case "insert":
			write = &snap.Recent[i]
		case "get":
			get = &snap.Recent[i]
		}
	}
	if write == nil || len(write.Hops) < 2 {
		t.Fatalf("promoted insert trace = %+v, want edge + fabric hops", write)
	}
	if get == nil || len(get.Hops) != 1 || get.Hops[0].PID != msg.GatewayPID {
		t.Fatalf("promoted get trace = %+v, want a single edge hop", get)
	}
}

// TestGatewayTracesEndpoints reads the edge ring back over both surfaces:
// the wire KindTraces and the /traces admin route.
func TestGatewayTracesEndpoints(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	g := newGateway(t, Config{Peers: addrs[:3], TraceSampleEvery: 1})
	srv, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cl := netnode.NewClient(srv.Addr())
	if err := cl.Insert("te/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	wire, err := cl.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if wire.Recorded == 0 || len(wire.Recent) == 0 {
		t.Fatalf("wire snapshot = %+v, want the promoted insert", wire)
	}

	adm, err := g.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	resp, err := http.Get("http://" + adm.Addr() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var admin tracering.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&admin); err != nil {
		t.Fatal(err)
	}
	if admin.Recorded != wire.Recorded || len(admin.Recent) != len(wire.Recent) {
		t.Fatalf("admin snapshot %+v disagrees with wire snapshot %+v", admin, wire)
	}
	// Both surfaces feed the stat snapshot gauges too.
	stats := g.StatSnapshot()
	if stats.TraceRecorded != wire.Recorded {
		t.Fatalf("stat snapshot trace_recorded = %d, ring says %d", stats.TraceRecorded, wire.Recorded)
	}
}
