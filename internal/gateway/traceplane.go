package gateway

// The edge half of the always-on trace plane (docs/OBSERVABILITY.md): the
// gateway head-samples the client requests it admits and stamps sampled
// writes (and any client-traced request) with a trace ID plus an edge hop
// carrying msg.GatewayPID, so the hops the fabric assembles — entry peer,
// broadcast fan-out, holders — parent back onto the gateway and one trace
// spans client edge and overlay. Finished traces land in the gateway's
// own bounded ring, with slow and errored requests tail-retained even
// when the head sampler passed them by; the ring is served over the wire
// (msg.KindTraces) and the admin endpoint (/traces).

import (
	"encoding/json"
	"fmt"
	"time"

	"lesslog/internal/msg"
	"lesslog/internal/tracering"
)

// nextTraceID derives a fresh non-zero trace ID from the gateway's
// sequence (splitmix64 finalizer — well-spread IDs without lock
// contention).
func (g *Gateway) nextTraceID() uint64 {
	x := g.traceSeq.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// isEdgeRequest reports whether req is a client operation the gateway
// interposes — the requests worth tracing at the edge. Forwarded
// plumbing kinds (store, has, table, stat, ...) belong to whoever sent
// them.
func isEdgeRequest(req *msg.Request) bool {
	if req.Hops != 0 || req.Flags&msg.FlagPropagate != 0 {
		return false
	}
	switch req.Kind {
	case msg.KindGet, msg.KindInsert, msg.KindUpdate, msg.KindDelete, msg.KindBatch:
		return true
	}
	return false
}

// stampEdge prefixes req's trace path with the gateway's edge hop, the
// root every downstream fabric hop parents onto. The hop's duration is
// patched to the full edge latency once the response is in hand.
func (g *Gateway) stampEdge(req *msg.Request) {
	parent := msg.NoParent
	if n := len(req.Path); n > 0 {
		parent = req.Path[n-1].PID
	}
	req.Path = append(req.Path, msg.Hop{
		PID: msg.GatewayPID, Parent: parent, Action: msg.HopEdge,
	})
}

// sampleEdge decides whether req's trace should be recorded at the edge:
// client-traced requests always are, and untraced ones are promoted when
// the head sampler picks them. Promoted writes go out traced (FlagTrace +
// fresh ID + edge hop) so the fabric assembles the broadcast tree for
// them; promoted gets and batches record edge-only — tracing must not
// knock a get off the cache/coalescer path it would otherwise take.
// promoted marks sampler picks — the caller strips the trace section off
// the response, so sampling stays invisible to clients that never asked.
func (g *Gateway) sampleEdge(req *msg.Request) (sampled, promoted bool) {
	if req.Flags&msg.FlagTrace != 0 {
		if req.TraceID == 0 {
			req.TraceID = g.nextTraceID()
		}
		g.stampEdge(req)
		return true, false
	}
	if !g.sampler.Sample() {
		return false, false
	}
	req.TraceID = g.nextTraceID()
	switch req.Kind {
	case msg.KindInsert, msg.KindUpdate, msg.KindDelete:
		req.Flags |= msg.FlagTrace
		g.stampEdge(req)
	}
	return true, true
}

// recordEdgeTrace retains a finished edge request in the trace ring:
// sampled requests always, unsampled ones only when slow or errored (the
// tail the head sampler must not lose). Requests that never carried a
// trace section downstream land with just the edge hop.
func (g *Gateway) recordEdgeTrace(req *msg.Request, resp *msg.Response, start time.Time, d time.Duration, sampled bool) {
	if !sampled && resp.Err == "" && d < g.ring.Slow() {
		return
	}
	hops := resp.Path
	if len(hops) == 0 {
		hops = []msg.Hop{{PID: msg.GatewayPID, Parent: msg.NoParent, Action: msg.HopEdge, Dur: d}}
	}
	g.ring.Record(tracering.Trace{
		ID: req.TraceID, Kind: req.Kind.String(), Name: req.Name,
		Start: start, Dur: d, Err: resp.Err, Hops: hops,
	})
}

// handleTraces serves the gateway's trace ring over the wire — the same
// body /traces serves over HTTP. Gateways answer for their own edge;
// peer rings are scraped at the peers.
func (g *Gateway) handleTraces() *msg.Response {
	data, err := json.Marshal(g.ring.Snapshot())
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("gateway: traces snapshot: %v", err)}
	}
	return &msg.Response{OK: true, ServedBy: msg.GatewayPID, Data: data}
}

// TraceSnapshot returns the gateway's trace ring contents — empty when
// tracing is disabled.
func (g *Gateway) TraceSnapshot() tracering.Snapshot { return g.ring.Snapshot() }
