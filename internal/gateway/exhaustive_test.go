package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func promFamilies(t *testing.T, text string) []string {
	t.Helper()
	var fams []string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
			fams = append(fams, fields[2])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(fams) == 0 {
		t.Fatal("no # TYPE lines in Prometheus output")
	}
	return fams
}

func jsonKeys(t *testing.T, v any) map[string]bool {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for k, inner := range m {
		keys[k] = true
		var nested map[string]json.RawMessage
		if json.Unmarshal(inner, &nested) == nil {
			for nk := range nested {
				keys[k+"."+nk] = true
			}
		}
	}
	return keys
}

// gatewayFamilyJSON maps every gateway Prometheus family to a JSON key of
// the gateway stat snapshot ("counters.x" reaches into the nested counter
// block). Any family landing on one surface without the other fails here.
var gatewayFamilyJSON = map[string]string{
	"lesslog_gateway_requests_total":          "counters.hits",
	"lesslog_gateway_writes_total":            "counters.inserts",
	"lesslog_gateway_fetch_errors_total":      "counters.fetch_errors",
	"lesslog_gateway_batches_total":           "counters.batches",
	"lesslog_gateway_passthrough_total":       "counters.passthrough",
	"lesslog_gateway_cache_events_total":      "counters.cache_evictions",
	"lesslog_gateway_peer_flips_total":        "counters.peers_down",
	"lesslog_gateway_proto_errors_total":      "counters.proto_errors",
	"lesslog_gateway_traces_total":            "trace_recorded",
	"lesslog_gateway_locate_events_total":     "counters.locates",
	"lesslog_gateway_chunk_events_total":      "counters.chunked_fills",
	"lesslog_gateway_oversize_rejected_total": "counters.oversize_rejected",
	"lesslog_gateway_write_plane_total":       "counters.chunked_puts",
	"lesslog_gateway_transfers_in_flight":     "transfers_in_flight",
	"lesslog_gateway_stripe_width":            "stripe_width",
	"lesslog_gateway_cache_entries":           "cache_len",
	"lesslog_gateway_route_hints":             "hint_len",
	"lesslog_gateway_in_flight":               "in_flight",
	"lesslog_gateway_pipeline_depth":          "pipeline_depth",
	"lesslog_gateway_entry_peers_down":        "peers_detector_down",
	"lesslog_gateway_get_latency_seconds":     "get_latency_ms",
	"lesslog_gateway_write_latency_seconds":   "write_latency_ms",
	"lesslog_gateway_batch_latency_seconds":   "batch_latency_ms",
	"lesslog_gateway_batch_size_subrequests":  "batch_size",
	"lesslog_gateway_queue_wait_seconds":      "queue_wait_ms",
}

// TestGatewayMetricsExhaustive checks that every counter and gauge family
// the gateway exports to Prometheus also appears in its JSON stat
// snapshot, and that the mapping table has no stale entries.
func TestGatewayMetricsExhaustive(t *testing.T) {
	addrs := startFabric(t, 3, 4)
	g := newGateway(t, Config{Peers: addrs})
	var buf bytes.Buffer
	g.WritePrometheus(&buf)
	fams := promFamilies(t, buf.String())
	keys := jsonKeys(t, g.StatSnapshot())

	seen := map[string]bool{}
	for _, fam := range fams {
		key, ok := gatewayFamilyJSON[fam]
		if !ok {
			t.Errorf("Prometheus family %s has no JSON stat-snapshot mapping — add it to both surfaces", fam)
			continue
		}
		if !keys[key] {
			t.Errorf("family %s maps to JSON key %q, absent from the snapshot", fam, key)
		}
		seen[fam] = true
	}
	for fam := range gatewayFamilyJSON {
		if !seen[fam] {
			t.Errorf("mapping table lists %s but WritePrometheus no longer emits it", fam)
		}
	}
}
