package gateway

// Request coalescing: under a hot-key workload (the 80/20 skew of the
// paper's §6), N concurrent cache misses on one name would issue N
// identical overlay lookups right when the fabric is busiest — exactly the
// duplicate load REPLICATEFILE needs time to absorb. A flightGroup lets
// the first miss fetch while every concurrent duplicate waits for that one
// result: N requests, one lookup.

import "sync"

// flight is one in-progress fetch; followers block on done.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// flightGroup deduplicates concurrent fetches by name.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[string]*flight{}}
}

// do runs fetch for name, coalescing concurrent callers onto one
// execution. shared reports whether this caller rode an existing flight.
func (g *flightGroup) do(name string, fetch func() (Result, error)) (res Result, shared bool, err error) {
	g.mu.Lock()
	if f, inFlight := g.flights[name]; inFlight {
		g.mu.Unlock()
		<-f.done
		return f.res, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.flights[name] = f
	g.mu.Unlock()

	f.res, f.err = fetch()
	g.mu.Lock()
	delete(g.flights, name)
	g.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}
