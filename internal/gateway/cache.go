package gateway

// The versioned read-through cache. Entries are bounded two ways — a TTL
// for freshness and an LRU capacity for memory — and guarded one more:
// per-name version floors. A floor records the newest write this gateway
// has seen acknowledged for a name (the Version field update and insert
// responses already carry); a fill older than the floor is refused, so a
// read that raced an update can never park pre-update data in the cache,
// and a hit is never older than an acknowledged write through the same
// gateway. Expired entries are kept until capacity evicts them: an entry
// that still satisfies the floor is the fallback when the fabric briefly
// answers with an older version than a write this gateway acknowledged.

import (
	"container/list"
	"sync"
	"time"

	"lesslog/internal/metrics"
)

// entry is one cached file version.
type entry struct {
	name     string
	data     []byte
	version  uint64
	servedBy uint32
	hops     uint32
	expires  time.Time
}

// cacheCounters observes the cache's behavior; wired to the gateway's
// counter set.
type cacheCounters struct {
	evictions     metrics.AtomicCounter // capacity evictions
	invalidations metrics.AtomicCounter // entries dropped by a newer write or delete
	staleRejected metrics.AtomicCounter // fills refused for running behind a floor
}

// versionCache is the bounded, versioned store behind Gateway.Get. All
// methods are safe for concurrent use.
type versionCache struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	entries map[string]*list.Element // of *entry
	lru     *list.List               // front = most recently used
	floors  map[string]uint64        // min acceptable version per name
	c       cacheCounters
}

// newVersionCache builds a cache holding at most capacity entries, each
// fresh for ttl after its fill. capacity <= 0 disables caching (floors are
// still tracked, so write-ordering holds even cacheless).
func newVersionCache(capacity int, ttl time.Duration) *versionCache {
	return &versionCache{
		cap:     capacity,
		ttl:     ttl,
		entries: map[string]*list.Element{},
		lru:     list.New(),
		floors:  map[string]uint64{},
	}
}

// get returns the cached entry for name if it satisfies the name's floor.
// fresh reports whether it is also within its TTL; a stale-but-ok entry is
// the floor fallback, not a servable hit.
func (vc *versionCache) get(name string) (e entry, fresh, ok bool) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	el, present := vc.entries[name]
	if !present {
		return entry{}, false, false
	}
	ent := el.Value.(*entry)
	if ent.version < vc.floors[name] {
		// A floor raised after the fill; the entry is dead weight.
		vc.removeLocked(el)
		vc.c.invalidations.Inc()
		return entry{}, false, false
	}
	vc.lru.MoveToFront(el)
	return *ent, time.Now().Before(ent.expires), true
}

// put fills name from a fabric read. The fill is refused (returning false)
// when it runs behind the name's floor — the caller raced a write this
// gateway already acknowledged — or when caching is disabled.
func (vc *versionCache) put(name string, data []byte, version uint64, servedBy, hops uint32) bool {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if version < vc.floors[name] {
		vc.c.staleRejected.Inc()
		return false
	}
	if vc.cap <= 0 {
		return true // fill accepted for the caller's purposes, nothing retained
	}
	vc.insertLocked(name, data, version, servedBy, hops)
	return true
}

// ackUpdate records an acknowledged update: the floor rises to version
// (monotonically — racing acks settle on the newest) and the written data
// is cached write-through, so readers see the new version immediately
// instead of waiting out a round-trip.
func (vc *versionCache) ackUpdate(name string, data []byte, version uint64) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if version > vc.floors[name] {
		vc.floors[name] = version
	}
	if vc.cap <= 0 {
		return
	}
	if el, present := vc.entries[name]; present && el.Value.(*entry).version >= version {
		return // already newer
	}
	vc.insertLocked(name, data, version, 0, 0)
}

// ackInsert records an acknowledged insert. An insert starts a new
// generation of the name — after a delete the fabric's version clock may
// restart lower — so the floor resets to the new version instead of
// ratcheting.
func (vc *versionCache) ackInsert(name string, data []byte, version uint64) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	vc.floors[name] = version
	if vc.cap <= 0 {
		return
	}
	if el, present := vc.entries[name]; present {
		vc.removeLocked(el)
		vc.c.invalidations.Inc()
	}
	vc.insertLocked(name, data, version, 0, 0)
}

// ackDelete records an acknowledged delete: the entry is dropped and the
// floor rises past the deleted version, so an in-flight read of the dead
// data cannot re-fill the cache behind the delete.
func (vc *versionCache) ackDelete(name string) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	floor := vc.floors[name]
	if el, present := vc.entries[name]; present {
		if v := el.Value.(*entry).version; v >= floor {
			floor = v + 1
		}
		vc.removeLocked(el)
		vc.c.invalidations.Inc()
	} else if floor > 0 {
		floor++
	}
	vc.floors[name] = floor
}

// floor returns the current version floor for name.
func (vc *versionCache) floor(name string) uint64 {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.floors[name]
}

// len returns the number of cached entries.
func (vc *versionCache) len() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return len(vc.entries)
}

// insertLocked installs or refreshes an entry and evicts past capacity.
// Floors outlive their entries deliberately: eviction forgets data, never
// write ordering.
func (vc *versionCache) insertLocked(name string, data []byte, version uint64, servedBy, hops uint32) {
	if el, present := vc.entries[name]; present {
		ent := el.Value.(*entry)
		ent.data, ent.version, ent.servedBy, ent.hops = data, version, servedBy, hops
		ent.expires = time.Now().Add(vc.ttl)
		vc.lru.MoveToFront(el)
		return
	}
	el := vc.lru.PushFront(&entry{
		name: name, data: data, version: version,
		servedBy: servedBy, hops: hops, expires: time.Now().Add(vc.ttl),
	})
	vc.entries[name] = el
	for vc.lru.Len() > vc.cap {
		vc.removeLocked(vc.lru.Back())
		vc.c.evictions.Inc()
	}
}

// removeLocked unlinks one element from both indexes.
func (vc *versionCache) removeLocked(el *list.Element) {
	vc.lru.Remove(el)
	delete(vc.entries, el.Value.(*entry).name)
}
