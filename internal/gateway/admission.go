package gateway

// Admission control: a gateway fronting millions of clients must fail
// fast when the fabric cannot keep up, not queue unboundedly until every
// caller times out. Concurrency is capped by a slot semaphore; a request
// that cannot get a slot waits at most QueueTimeout and is then shed with
// ErrOverloaded — a cheap, explicit signal the caller can back off on,
// instead of a deadline blown deep inside the overlay.

import (
	"errors"
	"time"

	"lesslog/internal/metrics"
)

// ErrOverloaded is returned when the gateway sheds a request: every
// in-flight slot stayed occupied for the full queue timeout.
var ErrOverloaded = errors.New("gateway: overloaded, request shed")

// admission is the slot semaphore with deadline-aware queueing. A nil
// *admission admits everything (unlimited).
type admission struct {
	slots   chan struct{}
	timeout time.Duration
	// queueWait observes how long admitted requests waited for a slot
	// beyond the fast path — the congestion signal operators watch.
	queueWait metrics.Histogram
}

// newAdmission builds a gate admitting at most maxInFlight concurrent
// requests, each waiting at most timeout for a slot. maxInFlight <= 0
// returns nil: unlimited.
func newAdmission(maxInFlight int, timeout time.Duration) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	return &admission{
		slots:   make(chan struct{}, maxInFlight),
		timeout: timeout,
	}
}

// acquire takes a slot, waiting up to the queue timeout. It returns the
// release func, or ErrOverloaded when the request should be shed.
func (a *admission) acquire() (func(), error) {
	if a == nil {
		return func() {}, nil
	}
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	start := time.Now()
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.queueWait.ObserveDuration(time.Since(start))
		return a.release, nil
	case <-timer.C:
		return nil, ErrOverloaded
	}
}

func (a *admission) release() { <-a.slots }

// inFlight returns the currently admitted request count.
func (a *admission) inFlight() int {
	if a == nil {
		return 0
	}
	return len(a.slots)
}
