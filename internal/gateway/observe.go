package gateway

// The gateway's operator surface: the counter set, a JSON-ready stats
// snapshot, Prometheus text exposition, and a small admin HTTP server
// (/metrics, /healthz, /traces, /debug/pprof) — the same shape a netnode
// peer exposes, specialized to edge concerns: hit ratio, coalescing rate,
// shed rate, queue wait, edge traces.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"lesslog/internal/metrics"
	"lesslog/internal/stream"
	"lesslog/internal/transport"
)

// Counters is the gateway's observable behavior.
type Counters struct {
	Hits        metrics.AtomicCounter // gets served from a fresh cache entry
	Misses      metrics.AtomicCounter // gets that needed a fabric fetch
	Coalesced   metrics.AtomicCounter // gets that rode another request's fetch
	StaleServed metrics.AtomicCounter // floor-satisfying cache entries served over a stale fabric answer
	Shed        metrics.AtomicCounter // requests refused by admission control
	FetchErrors metrics.AtomicCounter // fabric exchanges that failed or were refused
	Inserts     metrics.AtomicCounter // acknowledged inserts
	Updates     metrics.AtomicCounter // acknowledged updates
	Deletes     metrics.AtomicCounter // acknowledged deletes
	Batches     metrics.AtomicCounter // KindBatch frames sent
	Passthrough metrics.AtomicCounter // uninterposed requests forwarded
	PeersDown   metrics.AtomicCounter // entry peers declared down
	PeersUp     metrics.AtomicCounter // entry peers restored
	ProtoErrors metrics.AtomicCounter // client-connection decode/write failures

	// Locate-then-fetch data plane (docs/ROUTING.md).
	HintHits        metrics.AtomicCounter // misses served by a direct fetch off a cached hint
	HintStale       metrics.AtomicCounter // cached hints that failed and were invalidated
	Locates         metrics.AtomicCounter // locate RPCs issued
	LocateFallbacks metrics.AtomicCounter // unknown-kind answers that latched the relay path

	// Chunked data plane (docs/ROUTING.md).
	ChunkedFills     metrics.AtomicCounter // misses filled by a striped chunked transfer
	ChunkDowngrades  metrics.AtomicCounter // unknown-kind answers that latched chunking off
	OversizeRejected metrics.AtomicCounter // writes refused at the edge for exceeding the size cap

	// Chunked write plane (docs/ROUTING.md "The write plane").
	ChunkedPuts   metrics.AtomicCounter // over-frame writes committed through staged puts
	PutDowngrades metrics.AtomicCounter // unknown-kind put answers that latched chunked writes off
	HintRefreshes metrics.AtomicCounter // update acks that refreshed the entry hint in place
}

// CountersSnapshot is the plain-value copy of Counters plus the cache's
// internal counters, JSON-ready.
type CountersSnapshot struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Coalesced     uint64 `json:"coalesced"`
	StaleServed   uint64 `json:"stale_served"`
	Shed          uint64 `json:"shed"`
	FetchErrors   uint64 `json:"fetch_errors"`
	Inserts       uint64 `json:"inserts"`
	Updates       uint64 `json:"updates"`
	Deletes       uint64 `json:"deletes"`
	Batches       uint64 `json:"batches"`
	Passthrough   uint64 `json:"passthrough"`
	PeersDown     uint64 `json:"peers_down"`
	PeersUp       uint64 `json:"peers_up"`
	ProtoErrors   uint64 `json:"proto_errors"`
	Evictions     uint64 `json:"cache_evictions"`
	Invalidations uint64 `json:"cache_invalidations"`
	StaleRejected uint64 `json:"cache_stale_rejected"`

	HintHits        uint64 `json:"hint_hits"`
	HintStale       uint64 `json:"hint_stale"`
	Locates         uint64 `json:"locates"`
	LocateFallbacks uint64 `json:"locate_fallbacks"`

	ChunkedFills     uint64 `json:"chunked_fills"`
	ChunkDowngrades  uint64 `json:"chunk_downgrades"`
	OversizeRejected uint64 `json:"oversize_rejected"`
	ChunksFetched    uint64 `json:"chunks_fetched"`
	ChunkRetries     uint64 `json:"chunk_retries"`

	ChunkedPuts   uint64 `json:"chunked_puts"`
	PutDowngrades uint64 `json:"put_downgrades"`
	HintRefreshes uint64 `json:"hint_refreshes"`
	ChunksPut     uint64 `json:"chunks_put"`
	PutAborts     uint64 `json:"put_aborts"`
}

// StatSnapshot is the gateway's structured status, the edge counterpart
// of netnode.StatSnapshot.
type StatSnapshot struct {
	Peers       []string `json:"peers"`
	PeersDown   []uint32 `json:"peers_detector_down"` // entry-peer indexes
	CacheLen    int      `json:"cache_len"`
	CacheCap    int      `json:"cache_cap"`
	HintLen     int      `json:"hint_len"`
	CacheTTLMS  float64  `json:"cache_ttl_ms"`
	MaxInFlight int      `json:"max_in_flight"`
	InFlight    int      `json:"in_flight"`

	// PipelineDepth is the number of pipelined client requests currently
	// being handled across the gateway's wire connections.
	PipelineDepth int64 `json:"pipeline_depth"`

	// TransfersInFlight gauges chunked transfers currently reassembling;
	// StripeWidth is the replica fan-out of the most recent transfer.
	TransfersInFlight int64 `json:"transfers_in_flight"`
	StripeWidth       int64 `json:"stripe_width"`

	// TraceRecorded/TraceNoted count traces retained in the edge trace
	// ring: head-sampled, and tail-retained slow/errored (both 0 with the
	// trace plane disabled).
	TraceRecorded uint64 `json:"trace_recorded"`
	TraceNoted    uint64 `json:"trace_noted"`

	Counters CountersSnapshot `json:"counters"`

	GetLatencyMS   DistStat `json:"get_latency_ms"`
	WriteLatencyMS DistStat `json:"write_latency_ms"`
	BatchLatencyMS DistStat `json:"batch_latency_ms"`
	QueueWaitMS    DistStat `json:"queue_wait_ms"`
	BatchSize      DistStat `json:"batch_size"`

	Transport transport.CountersSnapshot `json:"transport"`
}

// DistStat mirrors netnode's distribution summary (count, mean,
// quantiles), duplicated here so the gateway package does not import
// netnode just for a JSON shape.
type DistStat struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

const nsToMS = 1e-6

// distStat converts a snapshot, scaling samples by scale.
func distStat(s metrics.HistogramSnapshot, scale float64) DistStat {
	return DistStat{
		Count: s.Count,
		Mean:  s.Mean() * scale,
		P50:   s.Quantile(0.5) * scale,
		P95:   s.Quantile(0.95) * scale,
		P99:   s.Quantile(0.99) * scale,
		Max:   float64(s.Max) * scale,
	}
}

// Snapshot copies the counters' current values.
func (g *Gateway) countersSnapshot() CountersSnapshot {
	return CountersSnapshot{
		Hits:          g.counters.Hits.Value(),
		Misses:        g.counters.Misses.Value(),
		Coalesced:     g.counters.Coalesced.Value(),
		StaleServed:   g.counters.StaleServed.Value(),
		Shed:          g.counters.Shed.Value(),
		FetchErrors:   g.counters.FetchErrors.Value(),
		Inserts:       g.counters.Inserts.Value(),
		Updates:       g.counters.Updates.Value(),
		Deletes:       g.counters.Deletes.Value(),
		Batches:       g.counters.Batches.Value(),
		Passthrough:   g.counters.Passthrough.Value(),
		PeersDown:     g.counters.PeersDown.Value(),
		PeersUp:       g.counters.PeersUp.Value(),
		ProtoErrors:   g.counters.ProtoErrors.Value(),
		Evictions:     g.cache.c.evictions.Value(),
		Invalidations: g.cache.c.invalidations.Value(),
		StaleRejected: g.cache.c.staleRejected.Value(),

		HintHits:        g.counters.HintHits.Value(),
		HintStale:       g.counters.HintStale.Value(),
		Locates:         g.counters.Locates.Value(),
		LocateFallbacks: g.counters.LocateFallbacks.Value(),

		ChunkedFills:     g.counters.ChunkedFills.Value(),
		ChunkDowngrades:  g.counters.ChunkDowngrades.Value(),
		OversizeRejected: g.counters.OversizeRejected.Value(),
		ChunksFetched:    g.streamStat(func(s *stream.Stats) uint64 { return s.ChunksFetched.Load() }),
		ChunkRetries:     g.streamStat(func(s *stream.Stats) uint64 { return s.ChunkRetries.Load() }),

		ChunkedPuts:   g.counters.ChunkedPuts.Value(),
		PutDowngrades: g.counters.PutDowngrades.Value(),
		HintRefreshes: g.counters.HintRefreshes.Value(),
		ChunksPut:     g.uploader.Stats().ChunksSent.Load(),
		PutAborts:     g.uploader.Stats().Aborts.Load(),
	}
}

// streamStat reads one fetcher counter, zero when chunking is disabled.
func (g *Gateway) streamStat(read func(*stream.Stats) uint64) uint64 {
	if g.fetcher == nil {
		return 0
	}
	return read(g.fetcher.Stats())
}

// streamGauge reads one fetcher gauge, zero when chunking is disabled.
func (g *Gateway) streamGauge(read func(*stream.Stats) int64) int64 {
	if g.fetcher == nil {
		return 0
	}
	return read(g.fetcher.Stats())
}

// StatSnapshot captures the gateway's current observable state.
func (g *Gateway) StatSnapshot() StatSnapshot {
	s := StatSnapshot{
		Peers:             append([]string(nil), g.peers...),
		PeersDown:         g.det.DownIDs(),
		CacheLen:          g.cache.len(),
		HintLen:           g.HintLen(),
		CacheCap:          g.cfg.CacheSize,
		CacheTTLMS:        float64(g.cfg.CacheTTL) * nsToMS,
		MaxInFlight:       g.cfg.MaxInFlight,
		InFlight:          g.adm.inFlight(),
		PipelineDepth:     g.pipelineDepth.Load(),
		TransfersInFlight: g.streamGauge(func(s *stream.Stats) int64 { return s.InFlight.Load() }),
		StripeWidth:       g.streamGauge(func(s *stream.Stats) int64 { return s.StripeWidth.Load() }),
		TraceRecorded:     g.ring.Recorded(),
		TraceNoted:        g.ring.Noted(),
		Counters:          g.countersSnapshot(),

		GetLatencyMS:   distStat(g.obs.get.Snapshot(), nsToMS),
		WriteLatencyMS: distStat(g.obs.write.Snapshot(), nsToMS),
		BatchLatencyMS: distStat(g.obs.batch.Snapshot(), nsToMS),
		BatchSize:      distStat(g.obs.batchSize.Snapshot(), 1),
		Transport:      g.tr.Counters().Snapshot(),
	}
	if g.adm != nil {
		s.QueueWaitMS = distStat(g.adm.queueWait.Snapshot(), nsToMS)
	}
	return s
}

// StatLine renders the one-line "k=v" summary, the edge counterpart of a
// peer's stat line.
func (g *Gateway) StatLine() string {
	c := g.countersSnapshot()
	return fmt.Sprintf(
		"gateway peers=%d cache=%d/%d hits=%d misses=%d coalesced=%d stale-served=%d shed=%d fetch-errors=%d batches=%d %s",
		len(g.peers), g.cache.len(), g.cfg.CacheSize,
		c.Hits, c.Misses, c.Coalesced, c.StaleServed, c.Shed, c.FetchErrors, c.Batches,
		g.tr.Counters())
}

// WritePrometheus writes the gateway's metrics in Prometheus text format.
// Families are documented in docs/GATEWAY.md.
func (g *Gateway) WritePrometheus(w io.Writer) {
	c := g.countersSnapshot()
	metrics.PrometheusFamily(w, "lesslog_gateway_requests_total", "counter",
		metrics.LabeledValue{Labels: `outcome="hit"`, Value: float64(c.Hits)},
		metrics.LabeledValue{Labels: `outcome="miss"`, Value: float64(c.Misses)},
		metrics.LabeledValue{Labels: `outcome="coalesced"`, Value: float64(c.Coalesced)},
		metrics.LabeledValue{Labels: `outcome="stale_served"`, Value: float64(c.StaleServed)},
		metrics.LabeledValue{Labels: `outcome="shed"`, Value: float64(c.Shed)})
	metrics.PrometheusFamily(w, "lesslog_gateway_writes_total", "counter",
		metrics.LabeledValue{Labels: `kind="insert"`, Value: float64(c.Inserts)},
		metrics.LabeledValue{Labels: `kind="update"`, Value: float64(c.Updates)},
		metrics.LabeledValue{Labels: `kind="delete"`, Value: float64(c.Deletes)})
	metrics.PrometheusFamily(w, "lesslog_gateway_fetch_errors_total", "counter",
		metrics.LabeledValue{Value: float64(c.FetchErrors)})
	metrics.PrometheusFamily(w, "lesslog_gateway_batches_total", "counter",
		metrics.LabeledValue{Value: float64(c.Batches)})
	metrics.PrometheusFamily(w, "lesslog_gateway_passthrough_total", "counter",
		metrics.LabeledValue{Value: float64(c.Passthrough)})
	metrics.PrometheusFamily(w, "lesslog_gateway_cache_events_total", "counter",
		metrics.LabeledValue{Labels: `event="eviction"`, Value: float64(c.Evictions)},
		metrics.LabeledValue{Labels: `event="invalidation"`, Value: float64(c.Invalidations)},
		metrics.LabeledValue{Labels: `event="stale_rejected"`, Value: float64(c.StaleRejected)})
	metrics.PrometheusFamily(w, "lesslog_gateway_peer_flips_total", "counter",
		metrics.LabeledValue{Labels: `direction="down"`, Value: float64(c.PeersDown)},
		metrics.LabeledValue{Labels: `direction="up"`, Value: float64(c.PeersUp)})
	metrics.PrometheusFamily(w, "lesslog_gateway_proto_errors_total", "counter",
		metrics.LabeledValue{Value: float64(c.ProtoErrors)})
	metrics.PrometheusFamily(w, "lesslog_gateway_traces_total", "counter",
		metrics.LabeledValue{Labels: `class="recorded"`, Value: float64(g.ring.Recorded())},
		metrics.LabeledValue{Labels: `class="noted"`, Value: float64(g.ring.Noted())})
	metrics.PrometheusFamily(w, "lesslog_gateway_locate_events_total", "counter",
		metrics.LabeledValue{Labels: `event="hint_hit"`, Value: float64(c.HintHits)},
		metrics.LabeledValue{Labels: `event="hint_stale"`, Value: float64(c.HintStale)},
		metrics.LabeledValue{Labels: `event="locate"`, Value: float64(c.Locates)},
		metrics.LabeledValue{Labels: `event="fallback"`, Value: float64(c.LocateFallbacks)})
	metrics.PrometheusFamily(w, "lesslog_gateway_chunk_events_total", "counter",
		metrics.LabeledValue{Labels: `event="fill"`, Value: float64(c.ChunkedFills)},
		metrics.LabeledValue{Labels: `event="chunk"`, Value: float64(c.ChunksFetched)},
		metrics.LabeledValue{Labels: `event="retry"`, Value: float64(c.ChunkRetries)},
		metrics.LabeledValue{Labels: `event="downgrade"`, Value: float64(c.ChunkDowngrades)})
	metrics.PrometheusFamily(w, "lesslog_gateway_oversize_rejected_total", "counter",
		metrics.LabeledValue{Value: float64(c.OversizeRejected)})
	metrics.PrometheusFamily(w, "lesslog_gateway_write_plane_total", "counter",
		metrics.LabeledValue{Labels: `event="chunked_put"`, Value: float64(c.ChunkedPuts)},
		metrics.LabeledValue{Labels: `event="chunk"`, Value: float64(c.ChunksPut)},
		metrics.LabeledValue{Labels: `event="abort"`, Value: float64(c.PutAborts)},
		metrics.LabeledValue{Labels: `event="downgrade"`, Value: float64(c.PutDowngrades)},
		metrics.LabeledValue{Labels: `event="hint_refresh"`, Value: float64(c.HintRefreshes)})

	metrics.PrometheusFamily(w, "lesslog_gateway_cache_entries", "gauge",
		metrics.LabeledValue{Value: float64(g.cache.len())})
	metrics.PrometheusFamily(w, "lesslog_gateway_route_hints", "gauge",
		metrics.LabeledValue{Value: float64(g.HintLen())})
	metrics.PrometheusFamily(w, "lesslog_gateway_in_flight", "gauge",
		metrics.LabeledValue{Value: float64(g.adm.inFlight())})
	metrics.PrometheusFamily(w, "lesslog_gateway_pipeline_depth", "gauge",
		metrics.LabeledValue{Value: float64(g.pipelineDepth.Load())})
	metrics.PrometheusFamily(w, "lesslog_gateway_entry_peers_down", "gauge",
		metrics.LabeledValue{Value: float64(g.det.DownCount())})
	metrics.PrometheusFamily(w, "lesslog_gateway_transfers_in_flight", "gauge",
		metrics.LabeledValue{Value: float64(g.streamGauge(func(s *stream.Stats) int64 { return s.InFlight.Load() }))})
	metrics.PrometheusFamily(w, "lesslog_gateway_stripe_width", "gauge",
		metrics.LabeledValue{Value: float64(g.streamGauge(func(s *stream.Stats) int64 { return s.StripeWidth.Load() }))})

	metrics.PrometheusHistogram(w, "lesslog_gateway_get_latency_seconds", 1e-9,
		metrics.LabeledHistogram{Snap: g.obs.get.Snapshot()})
	metrics.PrometheusHistogram(w, "lesslog_gateway_write_latency_seconds", 1e-9,
		metrics.LabeledHistogram{Snap: g.obs.write.Snapshot()})
	metrics.PrometheusHistogram(w, "lesslog_gateway_batch_latency_seconds", 1e-9,
		metrics.LabeledHistogram{Snap: g.obs.batch.Snapshot()})
	metrics.PrometheusHistogram(w, "lesslog_gateway_batch_size_subrequests", 1,
		metrics.LabeledHistogram{Snap: g.obs.batchSize.Snapshot()})
	if g.adm != nil {
		metrics.PrometheusHistogram(w, "lesslog_gateway_queue_wait_seconds", 1e-9,
			metrics.LabeledHistogram{Snap: g.adm.queueWait.Snapshot()})
	}
}

// Admin is a running gateway admin HTTP server.
type Admin struct {
	srv *http.Server
	ln  net.Listener
}

// ServeAdmin starts the gateway's admin HTTP server on addr
// ("127.0.0.1:0" picks a free port; Addr reports it).
func (g *Gateway) ServeAdmin(addr string) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: admin listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(g.StatSnapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(g.TraceSnapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a := &Admin{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go a.srv.Serve(ln)
	g.log.Info("admin endpoint listening", "addr", ln.Addr().String())
	return a, nil
}

// Addr returns the admin server's bound address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close shuts the admin server down immediately.
func (a *Admin) Close() error { return a.srv.Close() }
