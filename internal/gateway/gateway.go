// Package gateway is the client edge of a networked LessLog deployment:
// a production-shaped aggregation tier that sits between callers and the
// peer fabric, the architectural complement of the paper's in-overlay
// replication. REPLICATEFILE absorbs sustained skew by spreading copies;
// the gateway absorbs the *instantaneous* duplicate load a hot file
// generates before replication can react (§6's 80/20 workload), and
// shields the overlay from client bursts. It owns four mechanisms:
//
//   - entry-peer selection: requests round-robin over a set of entry
//     peers through one pooled internal/transport (deadlines, retries,
//     idle-connection reuse), with a failure detector steering traffic
//     away from peers that stop answering and probing them back in;
//   - coalescing: concurrent gets of one name cost one overlay lookup
//     (singleflight), so a flash crowd of identical reads arrives at the
//     fabric as a single request;
//   - a versioned read-through cache: bounded by TTL and LRU capacity,
//     with per-name version floors raised by the acknowledged writes that
//     pass through the gateway — a get through the gateway never returns
//     data older than an update the same gateway has acknowledged (see
//     docs/GATEWAY.md for the exact guarantee);
//   - admission control: a max-in-flight cap with deadline-aware
//     queueing; requests that cannot be admitted in time are shed with
//     ErrOverloaded instead of queueing without bound.
//
// Batched reads (GetMany) pipeline cache misses to a peer in one
// msg.KindBatch frame, decoded and served sub-request by sub-request on
// the peer side. Everything is instrumented: hit/miss/coalesced/shed
// counters, latency histograms, and a Prometheus admin endpoint.
package gateway

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"

	"lesslog/internal/metrics"
	"lesslog/internal/msg"
	"lesslog/internal/routehint"
	"lesslog/internal/stream"
	"lesslog/internal/tracering"
	"lesslog/internal/transport"
)

// Defaults for Config's zero fields.
const (
	DefaultCacheSize    = 4096
	DefaultCacheTTL     = 2 * time.Second
	DefaultMaxInFlight  = 1024
	DefaultQueueTimeout = 100 * time.Millisecond
	DefaultDowngradeTTL = 30 * time.Second
)

// maxFetchAttempts bounds how many distinct entry peers one read tries
// before giving up.
const maxFetchAttempts = 4

// Errors surfaced by gateway operations (ErrOverloaded lives in
// admission.go beside the gate that produces it).
var (
	// ErrFault mirrors the fabric's "file not found" outcome.
	ErrFault = errors.New("gateway: file not found (fault)")
	// ErrStaleRead reports that every entry peer answered with data older
	// than a write this gateway already acknowledged and no cached copy
	// could bridge the gap.
	ErrStaleRead = errors.New("gateway: fabric behind acknowledged writes")
	// ErrTooLarge rejects a write whose payload exceeds the fabric's file
	// size cap (msg.MaxFileSize), at the edge, before any bytes move — a
	// typed answer instead of a mid-stream failure. Payloads between
	// msg.MaxData and the cap stream through the staged put plane; only a
	// fabric predating chunked writes still bounds them at one frame.
	ErrTooLarge = errors.New("gateway: payload exceeds the write size cap")
	// errNoPeers reports an empty or fully-failed entry-peer set.
	errNoPeers = errors.New("gateway: no entry peer reachable")
)

// Config parameterizes a Gateway.
type Config struct {
	// Peers are the fabric entry addresses requests are spread over. At
	// least one is required.
	Peers []string
	// Transport carries the RPC robustness knobs shared with netnode
	// (deadlines, retries, pooling, failure threshold); zero fields take
	// transport defaults.
	Transport transport.Config
	// Faults, when set, injects deterministic faults into outbound RPCs —
	// the same test hook netnode peers use.
	Faults *transport.Faults
	// CacheSize bounds the read cache in entries; 0 selects
	// DefaultCacheSize, < 0 disables caching (floors are still enforced).
	CacheSize int
	// CacheTTL bounds how long a fill may be served without revisiting
	// the fabric; 0 selects DefaultCacheTTL.
	CacheTTL time.Duration
	// MaxInFlight caps concurrently admitted requests; 0 selects
	// DefaultMaxInFlight, < 0 disables admission control.
	MaxInFlight int
	// QueueTimeout bounds how long a request waits for an admission slot
	// before being shed; 0 selects DefaultQueueTimeout.
	QueueTimeout time.Duration
	// PipelineWorkers caps concurrently handled pipelined requests per
	// client connection; 0 selects transport.DefaultPipelineWorkers.
	PipelineWorkers int
	// DisableLocate turns the locate-then-fetch data plane off: every
	// cache miss relays the payload through the lookup path, as pre-locate
	// gateways did. With it on (the default), misses resolve the holder —
	// route-hint cache first, then a locate walk — and fetch the payload
	// in one direct hop; fabrics that answer locate with unknown-kind
	// downgrade automatically. See docs/ROUTING.md.
	DisableLocate bool
	// HintSize bounds the route-hint cache in entries; 0 selects
	// routehint.DefaultCapacity.
	HintSize int
	// HintTTL bounds how long a route hint may steer direct fetches
	// without being re-learned; 0 selects routehint.DefaultTTL.
	HintTTL time.Duration
	// DowngradeTTL is how long the gateway stays downgraded to the relay
	// path after the fabric answers locate with unknown-kind, before
	// probing again; 0 selects DefaultDowngradeTTL. Mixed-version fleets
	// that upgrade quickly can shorten it so the gateway re-probes sooner
	// (see the -downgrade-ttl flag on lesslog-gw and lesslogd). The same
	// TTL governs the chunk plane's independent downgrade latch.
	DowngradeTTL time.Duration
	// ChunkSize and ChunkWindow tune the striped chunk plane on the miss
	// path (bytes per ranged fetch, in-flight chunks per transfer); <= 0
	// selects the stream package defaults.
	ChunkSize   int
	ChunkWindow int
	// DisableChunks turns the chunked data plane off: every miss fetches
	// whole frames from a single holder, as pre-chunking gateways did.
	// Implied by DisableLocate (the chunk plane rides the locate plane).
	DisableChunks bool
	// TraceSampleEvery head-samples 1-in-N admitted client requests into
	// the edge trace ring (docs/OBSERVABILITY.md); 0 selects
	// tracering.DefaultSampleEvery, 1 samples everything, < 0 disables
	// the trace plane.
	TraceSampleEvery int
	// TraceSlow is the latency past which an unsampled request is
	// tail-retained anyway; 0 selects tracering.DefaultSlow.
	TraceSlow time.Duration
	// TraceRingSize bounds the retained traces; 0 selects
	// tracering.DefaultRingSize.
	TraceRingSize int
	// Logger receives structured gateway events; nil discards them.
	Logger *slog.Logger
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = DefaultCacheTTL
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = DefaultQueueTimeout
	}
	if c.PipelineWorkers == 0 {
		c.PipelineWorkers = transport.DefaultPipelineWorkers
	}
	if c.DowngradeTTL == 0 {
		c.DowngradeTTL = DefaultDowngradeTTL
	}
	return c
}

// Source says where a Result came from.
type Source uint8

// Result sources.
const (
	// SourceFabric: fetched from a peer for this request.
	SourceFabric Source = iota + 1
	// SourceCache: served from the versioned read cache.
	SourceCache
	// SourceCoalesced: rode another request's in-flight fetch.
	SourceCoalesced
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceFabric:
		return "fabric"
	case SourceCache:
		return "cache"
	case SourceCoalesced:
		return "coalesced"
	}
	return fmt.Sprintf("source(%d)", uint8(s))
}

// Result is one answered read.
type Result struct {
	Data     []byte
	Version  uint64
	ServedBy uint32 // fabric peer that served the underlying fill
	Hops     int    // overlay hops of the underlying fill
	Source   Source
}

// WriteResult is one acknowledged write.
type WriteResult struct {
	Copies  int    // fabric copies touched
	Version uint64 // version stamped on the write (0 for deletes)
}

// Lookup is one name's outcome in a batched read.
type Lookup struct {
	Name   string
	Result Result
	Err    error
}

// Gateway is the client edge. Safe for concurrent use.
type Gateway struct {
	cfg    Config
	peers  []string
	tr     *transport.Transport
	det    *transport.Detector
	cursor atomic.Uint64

	cache   *versionCache
	flights *flightGroup
	adm     *admission

	// hints is the data plane's name → holder-set cache; locateDown latches
	// the relay fallback (unix-nanos until which the fabric is assumed not
	// to speak locate). hints is nil iff Config.DisableLocate. fetcher is
	// the chunked striped transfer engine with its own downgrade latch
	// chunkDown — nil when chunking (or locate) is disabled.
	hints      *routehint.Cache
	locateDown atomic.Int64
	fetcher    *stream.Fetcher
	chunkDown  atomic.Int64

	// uploader streams over-frame writes to a peer in staged chunks;
	// putDown latches that path off (relaying ErrTooLarge at one frame's
	// cap) after the fabric answers put with unknown-kind.
	uploader *stream.Uploader
	putDown  atomic.Int64

	counters Counters
	obs      gwObs
	log      *slog.Logger

	// sampler/ring are the edge trace plane; both nil with tracing
	// disabled (every touch point is nil-safe). traceSeq feeds fresh
	// trace IDs.
	sampler  *tracering.Sampler
	ring     *tracering.Ring
	traceSeq atomic.Uint64

	// pipelineDepth is the number of pipelined client requests currently
	// being handled across the gateway's wire connections.
	pipelineDepth atomic.Int64
}

// New builds a gateway over cfg.Peers. The peer set is fixed for the
// gateway's lifetime; run one gateway per entry-peer view.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("gateway: config needs at least one entry peer")
	}
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	g := &Gateway{
		cfg:     cfg,
		peers:   append([]string(nil), cfg.Peers...),
		tr:      transport.New(cfg.Transport, cfg.Faults),
		cache:   newVersionCache(cfg.CacheSize, cfg.CacheTTL),
		flights: newFlightGroup(),
		adm:     newAdmission(cfg.MaxInFlight, cfg.QueueTimeout),
		log:     logger.With("component", "gateway"),
	}
	if !cfg.DisableLocate {
		g.hints = routehint.New(cfg.HintSize, cfg.HintTTL)
		if !cfg.DisableChunks {
			g.fetcher = stream.New(g.tr, stream.Config{
				ChunkSize: cfg.ChunkSize,
				Window:    cfg.ChunkWindow,
				// A transport-dead holder loses every hint pointing at it;
				// a not-holder refusal only loses this name's hint there.
				Evict: func(name, addr string, hard bool) {
					if hard {
						g.hints.PurgeHolder(addr)
					} else {
						g.hints.PurgeFrom(name, addr)
					}
				},
			})
		}
	}
	g.uploader = stream.NewUploader(g.tr, stream.Config{
		ChunkSize: cfg.ChunkSize,
		Window:    cfg.ChunkWindow,
	})
	if cfg.TraceSampleEvery >= 0 {
		slow := cfg.TraceSlow
		if slow <= 0 {
			slow = tracering.DefaultSlow
		}
		g.sampler = tracering.NewSampler(cfg.TraceSampleEvery)
		g.ring = tracering.NewRing(cfg.TraceRingSize, slow)
		g.traceSeq.Store(uint64(time.Now().UnixNano()) ^ uint64(msg.GatewayPID)<<32)
	}
	g.det = transport.NewDetector(g.tr.Config().FailThreshold, g.peerDown, g.peerUp)
	return g, nil
}

// peerDown and peerUp are the failure-detector callbacks, keyed by entry
// peer index.
func (g *Gateway) peerDown(idx uint32) {
	g.counters.PeersDown.Inc()
	addr := ""
	if int(idx) < len(g.peers) {
		addr = g.peers[idx]
		g.tr.DropIdle(addr)
		if g.hints != nil {
			// Every route hint pointing at the dead peer reroutes now,
			// instead of each paying its own failed direct fetch.
			g.hints.PurgeHolder(addr)
		}
	}
	g.log.Warn("entry peer declared down", "peer", addr)
}

func (g *Gateway) peerUp(idx uint32) {
	g.counters.PeersUp.Inc()
	if int(idx) < len(g.peers) {
		g.log.Info("entry peer restored", "peer", g.peers[idx])
	}
}

// Close shuts the gateway's transport. In-flight requests finish on their
// own deadlines.
func (g *Gateway) Close() error { return g.tr.Close() }

// Transport exposes the underlying transport (its counters feed the
// gateway snapshot).
func (g *Gateway) Transport() *transport.Transport { return g.tr }

// Detector exposes the entry-peer failure detector.
func (g *Gateway) Detector() *transport.Detector { return g.det }

// pickPeer selects the next entry peer round-robin, skipping peers the
// detector currently marks down. With every peer down it fails open — the
// attempt doubles as the recovery probe that lets the detector heal.
func (g *Gateway) pickPeer() int {
	n := len(g.peers)
	start := int(g.cursor.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if !g.det.Down(uint32(idx)) {
			return idx
		}
	}
	return start
}

// admit takes an admission slot, counting a shed on timeout.
func (g *Gateway) admit() (func(), error) {
	release, err := g.adm.acquire()
	if err != nil {
		g.counters.Shed.Inc()
		return nil, err
	}
	return release, nil
}

// Get serves one read: fresh cache hit, else one coalesced fabric fetch.
func (g *Gateway) Get(name string) (Result, error) {
	release, err := g.admit()
	if err != nil {
		return Result{}, err
	}
	defer release()
	start := time.Now()
	defer func() { g.obs.get.ObserveDuration(time.Since(start)) }()

	if e, fresh, ok := g.cache.get(name); ok && fresh {
		g.counters.Hits.Inc()
		return resultOf(e, SourceCache), nil
	}
	res, shared, err := g.flights.do(name, func() (Result, error) { return g.fetch(name) })
	if shared {
		g.counters.Coalesced.Inc()
		if err == nil {
			if res.Version < g.cache.floor(name) {
				// The flight this request rode took off before a write this
				// gateway has since acknowledged; its result is older than
				// the floor this Get must honor. One direct fetch resolves
				// it — fetch itself enforces the floor on the way back in.
				return g.fetch(name)
			}
			if res.Source == SourceFabric {
				res.Source = SourceCoalesced
			}
		}
	}
	return res, err
}

// fetch performs the fabric read behind a cache miss. The data plane
// degrades one level at a time: chunked striped fetch across the hinted
// replica set → locate-set walk + chunked fetch → whole-frame direct fetch
// off a single hint → locate walk + direct fetch → the payload-relaying
// lookup path. Every path funnels through the admitFill floor check, so
// the version-floor guarantee is identical however the bytes arrive.
func (g *Gateway) fetch(name string) (Result, error) {
	g.counters.Misses.Inc()
	if g.hints != nil {
		chunked := g.chunksUp()
		if chunked {
			if set, ok := g.hints.GetSet(name); ok {
				if res, err, ok := g.chunkFill(name, set); ok {
					g.counters.HintHits.Inc()
					return res, err
				}
				g.counters.HintStale.Inc()
				chunked = g.chunksUp() // an all-legacy set latches mid-flight
			}
		} else if h, ok := g.hints.Get(name); ok {
			if res, err, ok := g.fetchAt(name, h); ok {
				g.counters.HintHits.Inc()
				return res, err
			}
			g.counters.HintStale.Inc()
		}
		if chunked {
			if res, err, ok := g.fetchViaLocateSet(name); ok {
				return res, err
			}
		}
		if res, err, ok := g.fetchViaLocate(name); ok {
			return res, err
		}
	}
	return g.fetchRelay(name)
}

// chunksUp reports whether the chunked data plane is currently usable.
func (g *Gateway) chunksUp() bool {
	return g.fetcher != nil && time.Now().UnixNano() >= g.chunkDown.Load()
}

// chunkFill runs one striped chunked transfer across set and admits the
// reassembled payload through the version floor. ok=false means "resolve
// another way": the set was stale or raced a write (re-locate), the fabric
// does not speak chunked fetch (downgrade latched), or the fill ran behind
// the floor.
func (g *Gateway) chunkFill(name string, set []routehint.Hint) (Result, error, bool) {
	srcs := make([]stream.Source, len(set))
	for i, h := range set {
		srcs[i] = stream.Source{PID: h.PID, Addr: h.Addr}
	}
	data, ver, err := g.fetcher.Fetch(name, 0, srcs)
	if err != nil {
		switch {
		case errors.Is(err, stream.ErrUnsupported):
			g.counters.ChunkDowngrades.Inc()
			g.chunkDown.Store(time.Now().Add(g.cfg.DowngradeTTL).UnixNano())
			g.log.Info("fabric does not speak chunked fetch; downgrading",
				"retry_after", g.cfg.DowngradeTTL)
		case errors.Is(err, stream.ErrNotFound), errors.Is(err, stream.ErrVersionGone):
			// Stale set or a write raced the transfer: re-resolve.
		default:
			g.counters.FetchErrors.Inc()
		}
		return Result{}, nil, false
	}
	g.counters.ChunkedFills.Inc()
	res, ferr := g.admitFillData(name, data, ver, set[0].PID, 0)
	if ferr != nil && !errors.Is(ferr, ErrFault) {
		// The whole set runs behind a write this gateway acknowledged.
		g.hints.Purge(name)
		return Result{}, nil, false
	}
	return res, ferr, true
}

// fetchViaLocateSet resolves name's replica set through a locate-set walk,
// caches it, and fills via a chunked striped transfer. ok=false falls one
// level down (single-holder locate, then relay): the fabric answered
// unknown-kind (latching the chunk downgrade) or the chain could not
// settle. A clean fault is final, exactly like fetchViaLocate's.
func (g *Gateway) fetchViaLocateSet(name string) (Result, error, bool) {
	attempts := len(g.peers)
	if attempts > maxFetchAttempts {
		attempts = maxFetchAttempts
	}
	for i := 0; i < attempts; i++ {
		idx := g.pickPeer()
		g.counters.Locates.Inc()
		resp, err := g.tr.Do(g.peers[idx], &msg.Request{Kind: msg.KindLocateSet, Name: name})
		if err != nil {
			g.det.Fail(uint32(idx))
			g.counters.FetchErrors.Inc()
			continue
		}
		g.det.Ok(uint32(idx))
		if !resp.OK {
			if msg.IsUnknownKind(resp.Err) {
				g.counters.ChunkDowngrades.Inc()
				g.chunkDown.Store(time.Now().Add(g.cfg.DowngradeTTL).UnixNano())
				g.log.Info("fabric does not speak locate-set; downgrading",
					"peer", g.peers[idx], "retry_after", g.cfg.DowngradeTTL)
				return Result{}, nil, false
			}
			return Result{}, fmt.Errorf("%w: %s", ErrFault, name), true
		}
		hs, derr := msg.DecodeHolders(resp.Data)
		if derr != nil {
			g.counters.FetchErrors.Inc()
			continue
		}
		set := make([]routehint.Hint, len(hs))
		for j, h := range hs {
			set[j] = routehint.Hint{PID: h.PID, Addr: h.Addr, Version: h.Version}
		}
		g.hints.PutSet(name, set)
		if res, ferr, ok := g.chunkFill(name, set); ok {
			return res, ferr, true
		}
		if !g.chunksUp() {
			return Result{}, nil, false
		}
		// The set went stale between locate and transfer (churn, or a
		// concurrent write moved the pinned version); locate again.
	}
	return Result{}, nil, false
}

// fetchAt is the one-hop data-plane fetch: a local-only get at h's
// address, admitted through the version floor. ok=false means "resolve
// again" — the holder refused (stale hint), was unreachable (hints at that
// address are purged wholesale), or answered behind the floor.
func (g *Gateway) fetchAt(name string, h routehint.Hint) (Result, error, bool) {
	resp, rpcErr := g.tr.Do(h.Addr, &msg.Request{
		Kind: msg.KindGet, Flags: msg.FlagLocalOnly, Name: name,
	})
	if rpcErr != nil {
		// The holder itself is unreachable — the same evidence the failure
		// detector acts on, one deadline earlier. Reroute every name
		// hinted there at once.
		g.hints.PurgeHolder(h.Addr)
		g.counters.FetchErrors.Inc()
		return Result{}, nil, false
	}
	if !resp.OK {
		g.hints.Purge(name)
		return Result{}, nil, false
	}
	if resp.ServedBy != h.PID {
		// Served, but not by the hinted holder: a pre-locate peer ignored
		// the local-only bit and relayed. Data is good; the hint is not.
		g.hints.Purge(name)
	} else {
		g.hints.Put(name, routehint.Hint{PID: h.PID, Addr: h.Addr, Version: resp.Version})
	}
	res, err := g.admitFill(name, resp)
	if err != nil && !errors.Is(err, ErrFault) {
		// The holder runs behind a write this gateway acknowledged; its
		// hint cannot serve this floor generation.
		g.hints.Purge(name)
		return Result{}, nil, false
	}
	return res, err, true
}

// fetchViaLocate resolves name's holder through a locate walk and fetches
// directly there. ok=false falls back to the relay path: the fabric
// answered locate with unknown-kind (latching the downgrade), or the
// locate/fetch chain could not settle. A clean locate fault is final —
// the relay walk would visit the same tree and find the same nothing.
func (g *Gateway) fetchViaLocate(name string) (Result, error, bool) {
	if time.Now().UnixNano() < g.locateDown.Load() {
		return Result{}, nil, false
	}
	attempts := len(g.peers)
	if attempts > maxFetchAttempts {
		attempts = maxFetchAttempts
	}
	for i := 0; i < attempts; i++ {
		idx := g.pickPeer()
		g.counters.Locates.Inc()
		resp, err := g.tr.Do(g.peers[idx], &msg.Request{Kind: msg.KindLocate, Name: name})
		if err != nil {
			g.det.Fail(uint32(idx))
			g.counters.FetchErrors.Inc()
			continue
		}
		g.det.Ok(uint32(idx))
		if !resp.OK {
			if msg.IsUnknownKind(resp.Err) {
				g.counters.LocateFallbacks.Inc()
				g.locateDown.Store(time.Now().Add(g.cfg.DowngradeTTL).UnixNano())
				g.log.Info("fabric does not speak locate; relaying",
					"peer", g.peers[idx], "retry_after", g.cfg.DowngradeTTL)
				return Result{}, nil, false
			}
			return Result{}, fmt.Errorf("%w: %s", ErrFault, name), true
		}
		h := routehint.Hint{PID: resp.ServedBy, Addr: string(resp.Data), Version: resp.Version}
		if res, ferr, ok := g.fetchAt(name, h); ok {
			return res, ferr, true
		}
		// Holder vanished between locate and fetch; locate again.
	}
	return Result{}, nil, false
}

// fetchRelay is the pre-locate read path: the payload relays back through
// the lookup walk, trying distinct entry peers on transport failure and
// refusing to return data older than an acknowledged write.
func (g *Gateway) fetchRelay(name string) (Result, error) {
	attempts := len(g.peers)
	if attempts > maxFetchAttempts {
		attempts = maxFetchAttempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		idx := g.pickPeer()
		resp, err := g.tr.Do(g.peers[idx], &msg.Request{Kind: msg.KindGet, Name: name})
		if err != nil {
			g.det.Fail(uint32(idx))
			g.counters.FetchErrors.Inc()
			lastErr = err
			continue
		}
		g.det.Ok(uint32(idx))
		res, err := g.admitFill(name, resp)
		if err == nil || errors.Is(err, ErrFault) {
			return res, err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errNoPeers
	}
	return Result{}, lastErr
}

// admitFill turns one fabric get response into a Result, enforcing the
// version floor: a fill older than an acknowledged write is refused, and
// a retained cache entry that still satisfies the floor is served in its
// place (counted as StaleServed — the fabric, not the cache, was stale).
func (g *Gateway) admitFill(name string, resp *msg.Response) (Result, error) {
	if !resp.OK {
		return Result{}, fmt.Errorf("%w: %s", ErrFault, name)
	}
	return g.admitFillData(name, resp.Data, resp.Version, resp.ServedBy, uint32(resp.Hops))
}

// admitFillData is admitFill below the response envelope — the shared
// floor gate for whole-frame and chunk-reassembled fills alike.
func (g *Gateway) admitFillData(name string, data []byte, version uint64, servedBy, hops uint32) (Result, error) {
	if g.cache.put(name, data, version, servedBy, hops) {
		return Result{
			Data: data, Version: version,
			ServedBy: servedBy, Hops: int(hops), Source: SourceFabric,
		}, nil
	}
	if e, _, ok := g.cache.get(name); ok {
		g.counters.StaleServed.Inc()
		return resultOf(e, SourceCache), nil
	}
	return Result{}, ErrStaleRead
}

// GetMany serves a batched read: fresh cache hits are answered locally
// and the misses pipeline to one entry peer in a single msg.KindBatch
// frame. Per-name outcomes land in the returned slice (order preserved);
// the error is non-nil only when the batch as a whole could not run.
// Batched misses bypass the coalescer — the batch frame itself is the
// dedup unit.
func (g *Gateway) GetMany(names []string) ([]Lookup, error) {
	release, err := g.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	start := time.Now()
	defer func() { g.obs.batch.ObserveDuration(time.Since(start)) }()

	out := make([]Lookup, len(names))
	var missIdx []int
	for i, name := range names {
		out[i].Name = name
		if e, fresh, ok := g.cache.get(name); ok && fresh {
			g.counters.Hits.Inc()
			out[i].Result = resultOf(e, SourceCache)
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	if len(missIdx) > msg.MaxBatch {
		return nil, fmt.Errorf("gateway: %d misses exceed the %d sub-request batch limit", len(missIdx), msg.MaxBatch)
	}
	subs := make([]*msg.Request, len(missIdx))
	for j, i := range missIdx {
		g.counters.Misses.Inc()
		subs[j] = &msg.Request{Kind: msg.KindGet, Name: names[i]}
	}
	data, err := msg.AppendBatchRequests(nil, subs)
	if err != nil {
		return nil, fmt.Errorf("gateway: batch encode: %w", err)
	}
	g.counters.Batches.Inc()
	g.obs.batchSize.Observe(uint64(len(missIdx)))

	resps, err := g.sendBatch(data, len(missIdx))
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		out[i].Result, out[i].Err = g.admitFill(names[i], resps[j])
	}
	return out, nil
}

// sendBatch performs one batch exchange, retrying across entry peers on
// transport failure (batched gets are read-only, so the manual retry is
// safe even though KindBatch itself is not transport-idempotent).
func (g *Gateway) sendBatch(data []byte, want int) ([]*msg.Response, error) {
	attempts := len(g.peers)
	if attempts > maxFetchAttempts {
		attempts = maxFetchAttempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		idx := g.pickPeer()
		resp, err := g.tr.Do(g.peers[idx], &msg.Request{Kind: msg.KindBatch, Data: data})
		if err != nil {
			g.det.Fail(uint32(idx))
			g.counters.FetchErrors.Inc()
			lastErr = err
			continue
		}
		g.det.Ok(uint32(idx))
		if !resp.OK {
			return nil, fmt.Errorf("gateway: batch rejected: %s", resp.Err)
		}
		resps, err := msg.DecodeBatchResponses(resp.Data)
		if err != nil {
			return nil, fmt.Errorf("gateway: batch decode: %w", err)
		}
		if len(resps) != want {
			return nil, fmt.Errorf("gateway: batch answered %d of %d sub-requests", len(resps), want)
		}
		return resps, nil
	}
	if lastErr == nil {
		lastErr = errNoPeers
	}
	return nil, lastErr
}

// Insert stores a new file through the gateway. The acknowledged version
// starts a fresh floor generation for the name and is cached
// write-through.
func (g *Gateway) Insert(name string, data []byte) (WriteResult, error) {
	return g.write(msg.KindInsert, name, data)
}

// Update rewrites a file everywhere through the gateway. Once the fabric
// acknowledges, the gateway's floor for the name rises to the stamped
// version: no later Get through this gateway returns older data.
func (g *Gateway) Update(name string, data []byte) (WriteResult, error) {
	return g.write(msg.KindUpdate, name, data)
}

// Delete erases a file everywhere through the gateway and invalidates the
// cached copy; the floor rises past the deleted version so a racing read
// cannot re-fill the dead data.
func (g *Gateway) Delete(name string) (WriteResult, error) {
	return g.write(msg.KindDelete, name, nil)
}

// write performs one mutation. Mutations get exactly one attempt — the
// transport will not blindly retry a write that may have applied — so a
// transport error means "outcome unknown", which the caller must resolve
// (typically by reading back).
func (g *Gateway) write(kind msg.Kind, name string, data []byte) (WriteResult, error) {
	wr, _, err := g.writeTraced(kind, name, data, 0, nil)
	return wr, err
}

// writeTraced is write carrying the trace section: with a non-zero
// traceID the mutation goes out traced over the given root path
// (typically the gateway's edge hop), and the fan-out tree the fabric
// assembled comes back as hops. The floor bookkeeping is identical —
// tracing is additive, never a separate write path.
func (g *Gateway) writeTraced(kind msg.Kind, name string, data []byte, traceID uint64, path []msg.Hop) (WriteResult, []msg.Hop, error) {
	if len(data) > msg.MaxFileSize {
		// Refused before admission: no slot, no fabric round-trip, no
		// partially-staged upload on the wire.
		g.counters.OversizeRejected.Inc()
		return WriteResult{}, nil, fmt.Errorf("%w: %v %q is %d bytes, cap %d",
			ErrTooLarge, kind, name, len(data), msg.MaxFileSize)
	}
	if len(data) > msg.MaxData {
		return g.chunkedWrite(kind, name, data)
	}
	release, err := g.admit()
	if err != nil {
		return WriteResult{}, nil, err
	}
	defer release()
	start := time.Now()
	defer func() { g.obs.write.ObserveDuration(time.Since(start)) }()

	req := &msg.Request{Kind: kind, Name: name, Data: data}
	if traceID != 0 {
		req.Flags |= msg.FlagTrace
		req.TraceID = traceID
		req.Path = path
	}
	addr, idx, hint := g.writeEntry(kind, name)
	resp, err := g.tr.Do(addr, req)
	if err != nil && hint != nil {
		// The hinted holder is unreachable — reroute every hint pointing
		// there and give the mutation its one entry-peer attempt.
		g.hints.PurgeHolder(addr)
		hint = nil
		idx = g.pickPeer()
		addr = g.peers[idx]
		resp, err = g.tr.Do(addr, req)
	}
	if err != nil {
		if idx >= 0 {
			g.det.Fail(uint32(idx))
		}
		return WriteResult{}, nil, fmt.Errorf("gateway: %v %q: %w", kind, name, err)
	}
	if idx >= 0 {
		g.det.Ok(uint32(idx))
	}
	if !resp.OK {
		if hint != nil {
			g.hints.Purge(name)
		}
		return WriteResult{}, resp.Path, fmt.Errorf("gateway: %v %q: %s", kind, name, resp.Err)
	}
	g.ackWrite(kind, name, data, resp, hint)
	return WriteResult{Copies: int(resp.Hops), Version: resp.Version}, resp.Path, nil
}

// chunkedWrite moves an over-frame mutation through the staged put
// plane: the payload streams to one peer in ranged chunks, commits
// atomically there, and enters the fabric as a normal insert or update.
// A fabric that answers put with unknown-kind latches the path off for
// DowngradeTTL; while latched, over-frame writes fail fast with the
// one-frame cap spelled out.
func (g *Gateway) chunkedWrite(kind msg.Kind, name string, data []byte) (WriteResult, []msg.Hop, error) {
	op := msg.PutInsert
	if kind == msg.KindUpdate {
		op = msg.PutUpdate
	}
	if time.Now().UnixNano() < g.putDown.Load() {
		g.counters.OversizeRejected.Inc()
		return WriteResult{}, nil, fmt.Errorf("%w: %v %q is %d bytes, frame cap %d on a fabric predating chunked writes",
			ErrTooLarge, kind, name, len(data), msg.MaxData)
	}
	release, err := g.admit()
	if err != nil {
		return WriteResult{}, nil, err
	}
	defer release()
	start := time.Now()
	defer func() { g.obs.write.ObserveDuration(time.Since(start)) }()

	addr, idx, hint := g.writeEntry(kind, name)
	resp, err := g.uploader.Put(addr, name, data, op)
	if err != nil && hint != nil && !errors.Is(err, stream.ErrUnsupported) {
		// The hinted holder failed mid-upload; its staged session times out
		// server-side. Reroute and restart the upload at an entry peer.
		g.hints.PurgeHolder(addr)
		hint = nil
		idx = g.pickPeer()
		addr = g.peers[idx]
		resp, err = g.uploader.Put(addr, name, data, op)
	}
	if err != nil {
		if errors.Is(err, stream.ErrUnsupported) {
			g.counters.PutDowngrades.Inc()
			g.counters.OversizeRejected.Inc()
			g.putDown.Store(time.Now().Add(g.cfg.DowngradeTTL).UnixNano())
			g.log.Info("fabric does not speak chunked put; rejecting over-frame writes",
				"retry_after", g.cfg.DowngradeTTL)
			return WriteResult{}, nil, fmt.Errorf("%w: %v %q is %d bytes, frame cap %d on a fabric predating chunked writes",
				ErrTooLarge, kind, name, len(data), msg.MaxData)
		}
		if idx >= 0 {
			g.det.Fail(uint32(idx))
		}
		return WriteResult{}, nil, fmt.Errorf("gateway: %v %q: %w", kind, name, err)
	}
	if idx >= 0 {
		g.det.Ok(uint32(idx))
	}
	g.counters.ChunkedPuts.Inc()
	g.ackWrite(kind, name, data, resp, hint)
	return WriteResult{Copies: int(resp.Hops), Version: resp.Version}, resp.Path, nil
}

// writeEntry resolves where a mutation enters the fabric. Updates and
// deletes start at a copy when one is known — the cached route hint
// first, then one locate walk — so the fabric's broadcast begins at a
// holder instead of paying the entry walk. Inserts (and hint misses)
// round-robin over the entry peers. idx is -1 when addr is not an entry
// peer; detector bookkeeping only applies otherwise.
func (g *Gateway) writeEntry(kind msg.Kind, name string) (addr string, idx int, hint *routehint.Hint) {
	if g.hints != nil && kind != msg.KindInsert {
		if h, ok := g.hints.Get(name); ok {
			return h.Addr, -1, &h
		}
		if h, ok := g.resolveHolder(name); ok {
			return h.Addr, -1, &h
		}
	}
	idx = g.pickPeer()
	return g.peers[idx], idx, nil
}

// resolveHolder runs one locate walk to find a write's entry holder,
// caching the answer. ok=false — the fabric cannot locate (latching the
// downgrade), the walk failed, or the name is unknown — sends the write
// through an entry peer instead.
func (g *Gateway) resolveHolder(name string) (routehint.Hint, bool) {
	if time.Now().UnixNano() < g.locateDown.Load() {
		return routehint.Hint{}, false
	}
	attempts := len(g.peers)
	if attempts > maxFetchAttempts {
		attempts = maxFetchAttempts
	}
	for i := 0; i < attempts; i++ {
		idx := g.pickPeer()
		g.counters.Locates.Inc()
		resp, err := g.tr.Do(g.peers[idx], &msg.Request{Kind: msg.KindLocate, Name: name})
		if err != nil {
			g.det.Fail(uint32(idx))
			g.counters.FetchErrors.Inc()
			continue
		}
		g.det.Ok(uint32(idx))
		if !resp.OK {
			if msg.IsUnknownKind(resp.Err) {
				g.counters.LocateFallbacks.Inc()
				g.locateDown.Store(time.Now().Add(g.cfg.DowngradeTTL).UnixNano())
				g.log.Info("fabric does not speak locate; writes enter at entry peers",
					"peer", g.peers[idx], "retry_after", g.cfg.DowngradeTTL)
			}
			// A clean locate fault: the name has no copy to start at. The
			// entry walk answers authoritatively either way.
			return routehint.Hint{}, false
		}
		h := routehint.Hint{PID: resp.ServedBy, Addr: string(resp.Data), Version: resp.Version}
		g.hints.Put(name, h)
		return h, true
	}
	return routehint.Hint{}, false
}

// ackWrite applies one acknowledged mutation's edge bookkeeping: the
// write-through cache and floor, the per-kind counter, and the route
// hint. An acked update that entered at a hinted holder proves the
// holder still carries the name — now at the stamped version — so the
// hint is refreshed rather than dropped; inserts place fresh copies and
// deletes tombstone them, so their hints are purged.
func (g *Gateway) ackWrite(kind msg.Kind, name string, data []byte, resp *msg.Response, hint *routehint.Hint) {
	switch kind {
	case msg.KindInsert:
		g.cache.ackInsert(name, data, resp.Version)
		g.counters.Inserts.Inc()
	case msg.KindUpdate:
		g.cache.ackUpdate(name, data, resp.Version)
		g.counters.Updates.Inc()
	case msg.KindDelete:
		g.cache.ackDelete(name)
		g.counters.Deletes.Inc()
	}
	if g.hints == nil {
		return
	}
	if kind == msg.KindUpdate && hint != nil {
		g.hints.Put(name, routehint.Hint{PID: hint.PID, Addr: hint.Addr, Version: resp.Version})
		g.counters.HintRefreshes.Inc()
		return
	}
	g.hints.Purge(name)
}

// Forward passes an arbitrary request through to an entry peer, bypassing
// the cache — the escape hatch for kinds the gateway does not interpose
// (store, has, table, register, traced gets). Transport errors are
// retried across peers only for idempotent kinds.
func (g *Gateway) Forward(req *msg.Request) (*msg.Response, error) {
	release, err := g.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	g.counters.Passthrough.Inc()
	attempts := 1
	if transport.Idempotent(req.Kind) && len(g.peers) > 1 {
		attempts = len(g.peers)
		if attempts > maxFetchAttempts {
			attempts = maxFetchAttempts
		}
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		idx := g.pickPeer()
		resp, err := g.tr.Do(g.peers[idx], req)
		if err != nil {
			g.det.Fail(uint32(idx))
			lastErr = err
			continue
		}
		g.det.Ok(uint32(idx))
		return resp, nil
	}
	return nil, lastErr
}

// resultOf converts a cache entry.
func resultOf(e entry, src Source) Result {
	return Result{
		Data: e.data, Version: e.version,
		ServedBy: e.servedBy, Hops: int(e.hops), Source: src,
	}
}

// CacheLen returns the number of currently cached entries.
func (g *Gateway) CacheLen() int { return g.cache.len() }

// HintLen returns the number of cached route hints (0 with the locate
// data plane disabled).
func (g *Gateway) HintLen() int {
	if g.hints == nil {
		return 0
	}
	return g.hints.Len()
}

// Counters returns the gateway's counter set for inspection.
func (g *Gateway) Counters() *Counters { return &g.counters }

// gwObs bundles the gateway's latency distributions.
type gwObs struct {
	get       metrics.Histogram // Get latency, hits and misses alike
	write     metrics.Histogram // insert/update/delete latency
	batch     metrics.Histogram // GetMany latency
	batchSize metrics.Histogram // sub-requests per batch frame sent
}
