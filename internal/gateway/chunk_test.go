package gateway

// Tests for the gateway's chunked data plane: multi-chunk miss fills
// striped across replicas, the over-frame read ceiling, the oversize
// write guard, and floor safety of chunk-reassembled fills.

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math/rand"
	"testing"

	"lesslog/internal/msg"
)

func chunkPayload(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestGatewayChunkedMiss is the acceptance path through the edge: a file
// larger than one chunk inserts through the gateway and a cache-miss get
// comes back via a striped chunked transfer, bytes intact (the stream
// layer verifies per-chunk and whole-file CRC-32C before the fill is
// admitted).
func TestGatewayChunkedMiss(t *testing.T) {
	addrs, _ := startLocateFabric(t, 4, 1, 16, false) // B=1: two replicas
	g := newGateway(t, Config{Peers: addrs[:3], CacheSize: -1, ChunkSize: 4 << 10})
	data := chunkPayload(64<<10, 21) // 16 chunks
	if _, err := g.Insert("g/chunky", data); err != nil {
		t.Fatal(err)
	}
	res, err := g.Get("g/chunky")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatalf("chunked fill returned %d bytes, payload mismatch", len(res.Data))
	}
	c := g.Counters()
	if c.ChunkedFills.Value() != 1 {
		t.Fatalf("chunked fills = %d, want 1", c.ChunkedFills.Value())
	}
	if s := g.countersSnapshot(); s.ChunksFetched < 16 {
		t.Fatalf("chunks fetched = %d, want >= 16", s.ChunksFetched)
	}
	// Warm path: the replica-set hint serves the next miss without a
	// locate walk.
	locates := c.Locates.Value()
	if _, err := g.Get("g/chunky"); err != nil {
		t.Fatal(err)
	}
	if c.Locates.Value() != locates || c.HintHits.Value() != 1 {
		t.Fatalf("warm miss: locates=%d (was %d) hint-hits=%d",
			c.Locates.Value(), locates, c.HintHits.Value())
	}
}

// TestGatewayOverFrameRead proves the edge read ceiling is msg.MaxFileSize,
// not one frame: a copy larger than msg.MaxData (seeded directly into the
// holder stores, bypassing the write plane) is served through the gateway
// by chunked reassembly.
func TestGatewayOverFrameRead(t *testing.T) {
	if testing.Short() {
		t.Skip("seeds a >16 MiB payload per holder")
	}
	addrs, peers := startLocateFabric(t, 3, 0, 4, false)
	g := newGateway(t, Config{Peers: addrs[:2], CacheSize: -1})
	data := chunkPayload(msg.MaxData+(1<<20), 22) // 17 MiB
	// Seed every peer: the lookup walk routes by name hash, so wherever it
	// lands, a holder answers.
	for _, p := range peers {
		p.SeedLocal("g/huge", data, 1)
	}
	res, err := g.Get("g/huge")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatalf("over-frame read returned %d bytes, want %d intact", len(res.Data), len(data))
	}
}

// TestGatewayChunkedPutEndToEnd is the write half of the acceptance
// path: a payload at the full file-size cap — four times the frame cap —
// inserts through the gateway's streaming upload plane and reads back
// byte-identical through the chunked fetch plane. The ChunkedPuts
// counter proves the staged path carried it, not a whole-frame write.
func TestGatewayChunkedPutEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a 64 MiB payload through the edge")
	}
	addrs, _ := startLocateFabric(t, 3, 0, 4, false)
	g := newGateway(t, Config{Peers: addrs[:2], CacheSize: -1})
	data := chunkPayload(msg.MaxFileSize, 25)
	want := sha256.Sum256(data)
	wr, err := g.Insert("g/colossal", data)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Counters()
	if c.ChunkedPuts.Value() != 1 || c.Inserts.Value() != 1 {
		t.Fatalf("chunked puts = %d inserts = %d, want 1/1",
			c.ChunkedPuts.Value(), c.Inserts.Value())
	}
	res, err := g.Get("g/colossal")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version < wr.Version {
		t.Fatalf("readback version %d below acknowledged %d", res.Version, wr.Version)
	}
	if got := sha256.Sum256(res.Data); got != want {
		t.Fatalf("readback of %d bytes is not byte-identical to the upload", len(res.Data))
	}
}

// TestGatewayOversizeWriteRejected: the edge refuses writes past the
// file size cap with the typed error and counter before any bytes reach
// the fabric. (Writes between one frame and the cap stream through the
// chunked put plane instead of being refused.)
func TestGatewayOversizeWriteRejected(t *testing.T) {
	addrs, _ := startLocateFabric(t, 3, 0, 4, false)
	g := newGateway(t, Config{Peers: addrs[:1]})
	big := make([]byte, msg.MaxFileSize+1)
	if _, err := g.Insert("g/big", big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize insert err = %v, want ErrTooLarge", err)
	}
	if _, err := g.Update("g/big", big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize update err = %v, want ErrTooLarge", err)
	}
	c := g.Counters()
	if c.OversizeRejected.Value() != 2 {
		t.Fatalf("oversize counter = %d, want 2", c.OversizeRejected.Value())
	}
	if c.Inserts.Value() != 0 || c.Updates.Value() != 0 {
		t.Fatal("oversize write was acknowledged")
	}
}

// TestGatewayChunkedFloor: a chunk-reassembled fill is still subject to
// the version floor — after the gateway acknowledges an update, a chunked
// miss can never fill with the older version.
func TestGatewayChunkedFloor(t *testing.T) {
	addrs, _ := startLocateFabric(t, 4, 1, 16, false)
	g := newGateway(t, Config{Peers: addrs[:3], CacheSize: -1, ChunkSize: 1 << 10})
	v1 := chunkPayload(8<<10, 23)
	v2 := chunkPayload(8<<10, 24)
	if _, err := g.Insert("g/floor", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Get("g/floor"); err != nil { // warm the replica-set hint
		t.Fatal(err)
	}
	wr, err := g.Update("g/floor", v2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Get("g/floor")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version < wr.Version || !bytes.Equal(res.Data, v2) {
		t.Fatalf("post-update chunked get v%d (floor %d), payload match=%v",
			res.Version, wr.Version, bytes.Equal(res.Data, v2))
	}
}
