package gateway

// The gateway's wire front end: it speaks the same internal/msg framing
// the peers speak, so any existing client (netnode.Client, netnode.Conn,
// `lesslogd -connect`) points at a gateway instead of a peer and gets the
// edge behaviors transparently. Gets go through the cache and coalescer;
// writes pass through with floor bookkeeping; KindBatch frames are
// unpacked and each sub-request served through the same edge logic (so a
// batch of hot gets is answered from cache without touching the fabric);
// KindStat reports the gateway's own status; everything else forwards.

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"lesslog/internal/msg"
	"lesslog/internal/transport"
)

// Server is a running gateway wire listener.
type Server struct {
	g  *Gateway
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Listen binds the gateway's client-facing socket ("127.0.0.1:0" picks a
// free port) and starts serving msg frames.
func (g *Gateway) Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	s := &Server{g: g, ln: ln, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	g.log.Info("gateway listening", "addr", ln.Addr().String(), "peers", len(g.peers))
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and every open client connection, then awaits
// in-flight handlers. The gateway itself stays usable.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	open := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range open {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn serves one client connection through the pipelined serve
// loop: ID-framed requests dispatch to a bounded worker pool and respond
// out of order, so a client waiting on a slow fabric fetch does not stall
// its cache hits; legacy un-ID'd frames keep strict FIFO ordering.
func (s *Server) serveConn(conn net.Conn) {
	transport.ServeLoop(conn, s.handle, transport.ServeLoopOptions{
		Workers: s.g.cfg.PipelineWorkers,
		Depth:   &s.g.pipelineDepth,
		OnProtoError: func(err error) {
			s.g.counters.ProtoErrors.Inc()
			s.g.log.Debug("client connection protocol error", "err", err)
		},
	})
}

// handle serves one client frame: edge trace sampling around the
// dispatch. Sampled (or client-traced) requests are recorded in the
// gateway's trace ring with whatever route the fabric assembled;
// sampler-promoted ones get the trace section stripped off the response
// again, so sampling stays invisible to clients that never asked.
func (s *Server) handle(req *msg.Request) *msg.Response {
	g := s.g
	if g.ring == nil || !isEdgeRequest(req) {
		return s.dispatch(req)
	}
	start := time.Now()
	sampled, promoted := g.sampleEdge(req)
	resp := s.dispatch(req)
	d := time.Since(start)
	if len(resp.Path) > 0 && resp.Path[0].PID == msg.GatewayPID {
		// The edge hop went out with zero duration; the response knows the
		// full edge latency.
		resp.Path[0].Dur = d
	}
	g.recordEdgeTrace(req, resp, start, d, sampled)
	if promoted {
		resp.Path = nil
	}
	return resp
}

// dispatch routes one client frame through the gateway.
func (s *Server) dispatch(req *msg.Request) *msg.Response {
	switch req.Kind {
	case msg.KindGet:
		if req.Flags&msg.FlagTrace != 0 {
			// A traced get wants the live overlay route; the cache would
			// hide it. Pass through untouched.
			return s.forward(req)
		}
		res, err := s.g.Get(req.Name)
		if err != nil {
			return errResponse(err)
		}
		return &msg.Response{
			OK: true, ServedBy: res.ServedBy, Hops: uint32(res.Hops),
			Version: res.Version, Data: res.Data,
		}
	case msg.KindInsert, msg.KindUpdate, msg.KindDelete:
		// Traced writes run the same floor-keeping path with the trace
		// section riding along, so the broadcast fan-out tree the fabric
		// assembles comes back to the edge.
		traceID := uint64(0)
		if req.Flags&msg.FlagTrace != 0 {
			if traceID = req.TraceID; traceID == 0 {
				traceID = s.g.nextTraceID()
			}
		}
		wr, hops, err := s.g.writeTraced(req.Kind, req.Name, req.Data, traceID, req.Path)
		if err != nil {
			return errResponse(err)
		}
		return &msg.Response{OK: true, Hops: uint32(wr.Copies), Version: wr.Version, Path: hops}
	case msg.KindBatch:
		return s.handleBatch(req)
	case msg.KindTraces:
		return s.g.handleTraces()
	case msg.KindStat:
		if req.Flags&msg.FlagJSON != 0 {
			return s.statJSON()
		}
		return &msg.Response{OK: true, Data: []byte(s.g.StatLine())}
	}
	return s.forward(req)
}

// handleBatch unpacks a client batch and serves every sub-request through
// the gateway's own dispatch — a hot batched get is a cache hit here, not
// a fabric round-trip. (Sub-gets currently resolve one coalesced fetch
// each rather than re-packing the misses into one upstream frame; use
// Gateway.GetMany for that.)
func (s *Server) handleBatch(req *msg.Request) *msg.Response {
	subs, err := msg.DecodeBatchRequests(req.Data)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("gateway: batch decode: %v", err)}
	}
	// A traced batch spreads its trace onto every sub-request — one ID,
	// one edge root — and splices each sub-route back into the outer
	// response, so the client sees the whole batch as one trace tree.
	traced := req.Flags&msg.FlagTrace != 0
	var hops []msg.Hop
	resps := make([]*msg.Response, len(subs))
	for i, sub := range subs {
		if traced {
			sub.Flags |= msg.FlagTrace
			sub.TraceID = req.TraceID
			sub.Path = req.Path
		}
		resps[i] = s.dispatch(sub)
		if sp := resps[i].Path; traced && len(sp) > len(req.Path) {
			hops = append(hops, sp[len(req.Path):]...)
		}
	}
	data, err := msg.AppendBatchResponses(nil, resps)
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("gateway: batch encode: %v", err)}
	}
	resp := &msg.Response{OK: true, Data: data}
	if traced {
		resp.Path = append(append([]msg.Hop(nil), req.Path...), hops...)
		if len(resp.Path) > msg.MaxHops {
			resp.Path = resp.Path[:msg.MaxHops]
		}
	}
	return resp
}

func (s *Server) statJSON() *msg.Response {
	data, err := json.Marshal(s.g.StatSnapshot())
	if err != nil {
		return &msg.Response{Err: fmt.Sprintf("gateway: stat snapshot: %v", err)}
	}
	return &msg.Response{OK: true, Data: data}
}

func (s *Server) forward(req *msg.Request) *msg.Response {
	resp, err := s.g.Forward(req)
	if err != nil {
		return errResponse(err)
	}
	return resp
}

// errResponse maps a gateway error onto the wire. Faults keep the
// fabric's phrasing so clients (netnode.Client.Get) classify them the
// same way against a gateway as against a peer.
func errResponse(err error) *msg.Response {
	return &msg.Response{Err: err.Error()}
}
