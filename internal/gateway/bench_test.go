package gateway

// The hot-key benchmark behind `make gw-bench`: an 80/20 read workload
// (80% of gets land on the hottest 20% of names, §6's skew) served two
// ways against the same live fabric — direct per-operation netnode.Client
// calls versus one shared gateway. The gateway's cache and coalescer
// absorb the hot set, so its ops/sec must be a multiple of direct's;
// results/gateway_bench.txt records a run.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"lesslog/internal/benchjson"
	"lesslog/internal/netnode"
)

const (
	benchFiles  = 50
	benchHot    = benchFiles / 5 // the hot 20%
	benchHotPct = 80             // share of gets landing on the hot set
)

func benchName(i int) string { return fmt.Sprintf("bench/%03d", i) }

// pickBenchName maps one draw of an rng to a name under the 80/20 skew.
func pickBenchName(rng *rand.Rand) string {
	if rng.Intn(100) < benchHotPct {
		return benchName(rng.Intn(benchHot))
	}
	return benchName(benchHot + rng.Intn(benchFiles-benchHot))
}

func benchFabric(b *testing.B) []string {
	b.Helper()
	addrs := startFabric(b, 6, 32)
	cl := netnode.NewClient(addrs[0])
	for i := 0; i < benchFiles; i++ {
		if err := cl.Insert(benchName(i), []byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			b.Fatal(err)
		}
	}
	return addrs
}

// BenchmarkHotKeyDirect is the baseline: every get constructs a client
// and performs one full fabric round-trip, the way a fleet of independent
// short-lived callers hits the overlay.
func BenchmarkHotKeyDirect(b *testing.B) {
	addrs := benchFabric(b)
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(seq.Add(1))))
		for pb.Next() {
			addr := addrs[rng.Intn(len(addrs))]
			if _, err := netnode.NewClient(addr).Get(pickBenchName(rng)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if err := benchjson.Record("gateway", benchjson.Result{
		Name:    "hotkey/direct",
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHotKeyGateway serves the same workload through one gateway:
// the hot set collapses into cache hits and coalesced flights.
func BenchmarkHotKeyGateway(b *testing.B) {
	addrs := benchFabric(b)
	g, err := New(Config{Peers: addrs[:4]})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(seq.Add(1))))
		for pb.Next() {
			if _, err := g.Get(pickBenchName(rng)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	c := g.Counters()
	b.ReportMetric(float64(c.Hits.Value())/float64(b.N), "hits/op")
	if err := benchjson.Record("gateway", benchjson.Result{
		Name:    "hotkey/gateway",
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Extra:   map[string]float64{"hits_per_op": float64(c.Hits.Value()) / float64(b.N)},
	}); err != nil {
		b.Fatal(err)
	}
}
