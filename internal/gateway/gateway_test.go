package gateway

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lesslog/internal/bitops"
	"lesslog/internal/netnode"
	"lesslog/internal/transport"
)

// startFabric boots an n-peer networked fabric in an m-bit PID space and
// returns every peer's listen address, PID order.
func startFabric(t testing.TB, m, n int) []string {
	t.Helper()
	addrs := make(map[bitops.PID]string, n)
	peers := make([]*netnode.Peer, 0, n)
	for i := 0; i < n; i++ {
		p, err := netnode.Listen(netnode.Config{PID: bitops.PID(i), M: m})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		peers = append(peers, p)
		addrs[bitops.PID(i)] = p.Addr()
	}
	flat := make([]string, n)
	for i, p := range peers {
		p.SetAddrs(addrs)
		flat[i] = addrs[bitops.PID(i)]
	}
	return flat
}

func newGateway(t testing.TB, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestGetThroughGateway(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	g := newGateway(t, Config{Peers: addrs[:3]})

	// A write through the gateway is cached write-through: the next read
	// is a hit without touching the fabric.
	wr, err := g.Insert("g/a", []byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Version == 0 {
		t.Fatal("insert acked without a version stamp")
	}
	res, err := g.Get("g/a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceCache || !bytes.Equal(res.Data, []byte("alpha")) || res.Version != wr.Version {
		t.Fatalf("post-insert get = %+v", res)
	}
	if g.Counters().Hits.Value() != 1 {
		t.Fatalf("hits = %d, want 1", g.Counters().Hits.Value())
	}

	// A file the gateway has never seen: first get fills from the fabric,
	// second hits the fill.
	if err := netnode.NewClient(addrs[7]).Insert("g/b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	res, err = g.Get("g/b")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceFabric || !bytes.Equal(res.Data, []byte("beta")) {
		t.Fatalf("cold get = %+v", res)
	}
	res, err = g.Get("g/b")
	if err != nil || res.Source != SourceCache {
		t.Fatalf("warm get = %+v, %v", res, err)
	}

	// Misses on missing files surface the fabric's fault.
	if _, err := g.Get("g/ghost"); !errors.Is(err, ErrFault) {
		t.Fatalf("ghost get err = %v", err)
	}
}

func TestUpdateAndDeleteMaintainCache(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	g := newGateway(t, Config{Peers: addrs[:2]})

	if _, err := g.Insert("g/u", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	wr, err := g.Update("g/u", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Copies < 1 {
		t.Fatalf("update copies = %d", wr.Copies)
	}
	res, err := g.Get("g/u")
	if err != nil || !bytes.Equal(res.Data, []byte("v2")) || res.Version != wr.Version {
		t.Fatalf("post-update get = %+v, %v", res, err)
	}

	if _, err := g.Delete("g/u"); err != nil {
		t.Fatal(err)
	}
	// The cached copy must not outlive the acknowledged delete.
	if _, err := g.Get("g/u"); !errors.Is(err, ErrFault) {
		t.Fatalf("post-delete get err = %v", err)
	}
}

// TestReadNeverOlderThanAcknowledgedWrite is the gateway's consistency
// contract, end to end: once an update through this gateway has been
// acknowledged, no Get through the same gateway — cache hit, coalesced
// ride-along, or fabric fetch — returns older data. The cache TTL is one
// nanosecond so every read is forced back to the fabric through the
// version-floor machinery, and readers race the writer under -race.
func TestReadNeverOlderThanAcknowledgedWrite(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	g := newGateway(t, Config{Peers: addrs[:4], CacheTTL: time.Nanosecond})

	const name = "rw/f"
	wr, err := g.Insert(name, []byte("v0"))
	if err != nil {
		t.Fatal(err)
	}
	var acked atomic.Uint64
	acked.Store(wr.Version)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Load the newest acknowledged version BEFORE starting the
				// read: the contract covers exactly the writes acknowledged
				// before the Get began.
				floor := acked.Load()
				res, err := g.Get(name)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if res.Version < floor {
					t.Errorf("get returned version %d (source %v) after version %d was acknowledged",
						res.Version, res.Source, floor)
					return
				}
			}
		}()
	}
	for i := 1; i <= 60; i++ {
		wr, err := g.Update(name, []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		// Only after the fabric acknowledged does the bar rise.
		acked.Store(wr.Version)
	}
	close(done)
	wg.Wait()
}

func TestCoalescingCollapsesConcurrentGets(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	if err := netnode.NewClient(addrs[3]).Insert("c/hot", []byte("hot")); err != nil {
		t.Fatal(err)
	}
	// Every fabric get takes 100ms, so readers launched together all ride
	// one flight.
	faults := transport.NewFaults().Add(transport.Rule{Delay: 100 * time.Millisecond})
	g := newGateway(t, Config{Peers: addrs[:2], Faults: faults})

	const readers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := g.Get("c/hot")
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			if !bytes.Equal(res.Data, []byte("hot")) {
				t.Errorf("get data = %q", res.Data)
			}
		}()
	}
	close(start)
	wg.Wait()
	c := g.Counters()
	if c.Misses.Value() != 1 || c.Coalesced.Value() != readers-1 {
		t.Fatalf("misses = %d coalesced = %d, want 1 and %d",
			c.Misses.Value(), c.Coalesced.Value(), readers-1)
	}
}

func TestAdmissionShedsUnderLoad(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	if err := netnode.NewClient(addrs[0]).Insert("a/slow", []byte("x")); err != nil {
		t.Fatal(err)
	}
	faults := transport.NewFaults().Add(transport.Rule{Delay: 300 * time.Millisecond})
	g := newGateway(t, Config{
		Peers: addrs[:2], Faults: faults,
		MaxInFlight: 1, QueueTimeout: 5 * time.Millisecond,
	})

	// One request occupies the only slot for 300ms; followers can wait at
	// most 5ms and must be shed.
	occupied := make(chan struct{})
	go func() {
		close(occupied)
		g.Get("a/slow")
	}()
	<-occupied
	time.Sleep(20 * time.Millisecond) // let the occupant take its slot
	var shed int
	for i := 0; i < 3; i++ {
		if _, err := g.Get("a/slow"); errors.Is(err, ErrOverloaded) {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("no request was shed with every slot occupied")
	}
	if got := g.Counters().Shed.Value(); got != uint64(shed) {
		t.Fatalf("shed counter = %d, want %d", got, shed)
	}
}

func TestEntryPeerFailover(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	for i := 0; i < 8; i++ {
		if err := netnode.NewClient(addrs[5]).Insert(fmt.Sprintf("f/%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Entry peer 0 refuses every get; the gateway must fail over to peer 1
	// and, after FailThreshold consecutive failures, stop routing to 0.
	faults := transport.NewFaults().Add(transport.Rule{
		Addr: addrs[0], Kind: 0, Drop: true,
	})
	g := newGateway(t, Config{Peers: addrs[:2], Faults: faults, CacheSize: -1})
	for i := 0; i < 8; i++ {
		if _, err := g.Get(fmt.Sprintf("f/%d", i)); err != nil {
			t.Fatalf("get %d through failing entry set: %v", i, err)
		}
	}
	c := g.Counters()
	if c.FetchErrors.Value() == 0 {
		t.Fatal("no fetch errors recorded while peer 0 dropped everything")
	}
	if c.PeersDown.Value() != 1 {
		t.Fatalf("peersDown = %d, want 1", c.PeersDown.Value())
	}
	if !g.Detector().Down(0) {
		t.Fatal("detector never declared entry peer 0 down")
	}
}

func TestStaleFabricAnswersAreSuppressed(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	g := newGateway(t, Config{Peers: addrs[:2], CacheTTL: 30 * time.Millisecond})

	if err := netnode.NewClient(addrs[0]).Insert("st/f", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Get("st/f"); err != nil {
		t.Fatal(err)
	}
	// Simulate an acknowledged write the fabric has "lost" (or not yet
	// converged on): the floor rises far past anything the peers hold.
	g.cache.ackUpdate("st/f", []byte("acked"), 999)
	time.Sleep(40 * time.Millisecond) // expire the write-through entry

	res, err := g.Get("st/f")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 999 || !bytes.Equal(res.Data, []byte("acked")) || res.Source != SourceCache {
		t.Fatalf("stale fabric answer leaked: %+v", res)
	}
	if g.Counters().StaleServed.Value() == 0 {
		t.Fatal("StaleServed not counted")
	}

	// With the cache disabled there is no retained copy to bridge the gap:
	// the read fails loudly rather than serving pre-ack data.
	g2 := newGateway(t, Config{Peers: addrs[:2], CacheSize: -1})
	g2.cache.ackUpdate("st/f", nil, 999)
	if _, err := g2.Get("st/f"); !errors.Is(err, ErrStaleRead) {
		t.Fatalf("cacheless stale read err = %v, want ErrStaleRead", err)
	}
}

func TestGetManyPipelinesMisses(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	names := make([]string, 5)
	for i := range names {
		names[i] = fmt.Sprintf("b/%d", i)
		if err := netnode.NewClient(addrs[i]).Insert(names[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	g := newGateway(t, Config{Peers: addrs[:3]})

	got, err := g.GetMany(names)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range got {
		if l.Err != nil || !bytes.Equal(l.Result.Data, []byte{byte(i)}) || l.Result.Source != SourceFabric {
			t.Fatalf("lookup[%d] = %+v, %v", i, l.Result, l.Err)
		}
	}
	c := g.Counters()
	if c.Batches.Value() != 1 || c.Misses.Value() != 5 {
		t.Fatalf("batches = %d misses = %d, want 1 and 5", c.Batches.Value(), c.Misses.Value())
	}

	// Warm repeat: all hits, no new batch frame.
	got, err = g.GetMany(names)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range got {
		if l.Err != nil || l.Result.Source != SourceCache {
			t.Fatalf("warm lookup[%d] = %+v, %v", i, l.Result, l.Err)
		}
	}
	if c.Batches.Value() != 1 || c.Hits.Value() != 5 {
		t.Fatalf("warm batches = %d hits = %d", c.Batches.Value(), c.Hits.Value())
	}

	// A missing name fails alone; its neighbors still resolve.
	got, err = g.GetMany([]string{"b/0", "b/ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err != nil || !errors.Is(got[1].Err, ErrFault) {
		t.Fatalf("mixed lookups = %v, %v", got[0].Err, got[1].Err)
	}
}

// TestServerSpeaksPeerProtocol points an unmodified netnode.Client at the
// gateway's wire listener: inserts, gets, updates, deletes, traced gets
// and stat must all work as they do against a peer.
func TestServerSpeaksPeerProtocol(t *testing.T) {
	addrs := startFabric(t, 4, 16)
	g := newGateway(t, Config{Peers: addrs[:3]})
	srv, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cl := netnode.NewClient(srv.Addr())
	if err := cl.Insert("s/f", []byte("one")); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Get("s/f")
	if err != nil || !bytes.Equal(res.Data, []byte("one")) {
		t.Fatalf("get via server = %+v, %v", res, err)
	}
	if g.Counters().Hits.Value() != 1 {
		t.Fatalf("server get missed the cache: hits = %d", g.Counters().Hits.Value())
	}
	if _, err := cl.Update("s/f", []byte("two")); err != nil {
		t.Fatal(err)
	}
	res, err = cl.Get("s/f")
	if err != nil || !bytes.Equal(res.Data, []byte("two")) {
		t.Fatalf("post-update get via server = %+v, %v", res, err)
	}

	// Traced gets bypass the cache so the route is the live one.
	traced, err := cl.GetTraced("s/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Path) == 0 {
		t.Fatal("traced get through the gateway lost its route")
	}

	// Stat reports the gateway itself, not a peer.
	line, err := cl.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "gateway") {
		t.Fatalf("stat line = %q", line)
	}

	if _, err := cl.Delete("s/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("s/f"); !errors.Is(err, netnode.ErrFault) {
		t.Fatalf("post-delete get err = %v", err)
	}
}
