package gateway

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestCacheTTLAndLRU(t *testing.T) {
	vc := newVersionCache(3, 50*time.Millisecond)
	if !vc.put("a", []byte("a"), 1, 0, 0) {
		t.Fatal("fill refused with no floor")
	}
	e, fresh, ok := vc.get("a")
	if !ok || !fresh || !bytes.Equal(e.data, []byte("a")) {
		t.Fatalf("get after put: fresh=%v ok=%v", fresh, ok)
	}
	// Capacity: filling past 3 entries evicts the least recently used.
	vc.put("b", []byte("b"), 1, 0, 0)
	vc.put("c", []byte("c"), 1, 0, 0)
	vc.get("a") // touch a so b is LRU
	vc.put("d", []byte("d"), 1, 0, 0)
	if _, _, ok := vc.get("b"); ok {
		t.Fatal("LRU entry b survived past capacity")
	}
	if _, _, ok := vc.get("a"); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
	if vc.c.evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", vc.c.evictions.Value())
	}
	// TTL: entries stop being fresh but remain as floor fallbacks.
	time.Sleep(60 * time.Millisecond)
	if _, fresh, ok := vc.get("a"); !ok || fresh {
		t.Fatalf("expired entry: fresh=%v ok=%v, want stale-but-ok", fresh, ok)
	}
}

func TestCacheFloorRefusesStaleFills(t *testing.T) {
	vc := newVersionCache(8, time.Minute)
	vc.ackUpdate("f", []byte("v5"), 5)
	if vc.put("f", []byte("v3"), 3, 0, 0) {
		t.Fatal("fill below the floor was accepted")
	}
	if vc.c.staleRejected.Value() != 1 {
		t.Fatalf("staleRejected = %d, want 1", vc.c.staleRejected.Value())
	}
	e, _, ok := vc.get("f")
	if !ok || e.version != 5 || !bytes.Equal(e.data, []byte("v5")) {
		t.Fatalf("write-through entry lost: %+v ok=%v", e, ok)
	}
	// At or above the floor, fills flow again.
	if !vc.put("f", []byte("v6"), 6, 0, 0) {
		t.Fatal("fill above the floor refused")
	}
}

func TestCacheAckUpdateIsMonotonic(t *testing.T) {
	vc := newVersionCache(8, time.Minute)
	vc.ackUpdate("f", []byte("v7"), 7)
	vc.ackUpdate("f", []byte("v4"), 4) // late-arriving older ack
	if got := vc.floor("f"); got != 7 {
		t.Fatalf("floor = %d, want 7 (racing acks settle on the newest)", got)
	}
	e, _, ok := vc.get("f")
	if !ok || e.version != 7 {
		t.Fatalf("entry regressed to %d, want 7", e.version)
	}
}

func TestCacheAckInsertResetsGeneration(t *testing.T) {
	vc := newVersionCache(8, time.Minute)
	vc.ackUpdate("f", []byte("v9"), 9)
	vc.ackDelete("f")
	if _, _, ok := vc.get("f"); ok {
		t.Fatal("deleted entry still served")
	}
	if got := vc.floor("f"); got != 10 {
		t.Fatalf("post-delete floor = %d, want 10 (past the deleted version)", got)
	}
	// Re-insert starts a new generation with a lower fabric version.
	vc.ackInsert("f", []byte("new"), 2)
	if got := vc.floor("f"); got != 2 {
		t.Fatalf("post-insert floor = %d, want 2 (reset, not ratcheted)", got)
	}
	e, fresh, ok := vc.get("f")
	if !ok || !fresh || e.version != 2 {
		t.Fatalf("re-inserted entry: %+v fresh=%v ok=%v", e, fresh, ok)
	}
}

func TestCacheDeleteWithoutEntryStillBlocksRefill(t *testing.T) {
	vc := newVersionCache(8, time.Minute)
	vc.ackUpdate("f", nil, 5)
	// Entry evicted before the delete lands.
	vc.mu.Lock()
	vc.removeLocked(vc.entries["f"])
	vc.mu.Unlock()
	vc.ackDelete("f")
	if vc.put("f", []byte("zombie"), 5, 0, 0) {
		t.Fatal("pre-delete data refilled the cache after an acknowledged delete")
	}
}

func TestCacheDisabledStillEnforcesFloors(t *testing.T) {
	vc := newVersionCache(-1, time.Minute)
	vc.ackUpdate("f", []byte("v5"), 5)
	if vc.put("f", []byte("v3"), 3, 0, 0) {
		t.Fatal("cacheless floor let a stale fill through")
	}
	if !vc.put("f", []byte("v6"), 6, 0, 0) {
		t.Fatal("cacheless put above floor refused")
	}
	if _, _, ok := vc.get("f"); ok {
		t.Fatal("disabled cache retained an entry")
	}
	if vc.len() != 0 {
		t.Fatalf("disabled cache len = %d", vc.len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	vc := newVersionCache(64, time.Minute)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				name := fmt.Sprintf("k/%d", i%32)
				vc.put(name, []byte("x"), uint64(i), 0, 0)
				vc.get(name)
				if i%17 == 0 {
					vc.ackUpdate(name, []byte("y"), uint64(i+1))
				}
				if i%61 == 0 {
					vc.ackDelete(name)
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
