package diskstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lesslog/internal/store"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := store.New()
	s.Put(store.File{Name: "a/b.txt", Data: []byte("alpha"), Version: 3}, store.Inserted)
	s.Put(store.File{Name: "c", Data: []byte("gamma"), Version: 1}, store.Replica)
	s.Put(store.File{Name: "empty", Data: nil, Version: 9}, store.Replica)
	if err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.AllNames(), s.AllNames()) {
		t.Fatalf("names = %v, want %v", loaded.AllNames(), s.AllNames())
	}
	for _, name := range s.AllNames() {
		want, _ := s.Peek(name)
		got, ok := loaded.Peek(name)
		if !ok || !bytes.Equal(got.Data, want.Data) || got.Version != want.Version {
			t.Fatalf("%s: got %+v, want %+v", name, got, want)
		}
		wk, _ := s.KindOf(name)
		gk, _ := loaded.KindOf(name)
		if wk != gk {
			t.Fatalf("%s: kind %v, want %v", name, gk, wk)
		}
	}
}

func TestSavePrunesDeleted(t *testing.T) {
	dir := t.TempDir()
	s := store.New()
	s.Put(store.File{Name: "keep", Data: []byte("1"), Version: 1}, store.Inserted)
	s.Put(store.File{Name: "drop", Data: []byte("2"), Version: 1}, store.Inserted)
	if err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	s.Delete("drop")
	if err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 || !loaded.Has("keep") || loaded.Has("drop") {
		t.Fatalf("loaded = %v", loaded.AllNames())
	}
}

func TestLoadMissingDir(t *testing.T) {
	s, err := Load(filepath.Join(t.TempDir(), "nope"))
	if err != nil || s.Len() != 0 {
		t.Fatalf("missing dir: %v, %v", s, err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := store.New()
	s.Put(store.File{Name: "x", Data: []byte("1"), Version: 1}, store.Inserted)
	if err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	path := filepath.Join(dir, entries[0].Name())
	// Truncate the record.
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-1], 0o644)
	if _, err := Load(dir); err == nil {
		t.Fatal("truncated record accepted")
	}
	// Clobber the magic.
	bad := append([]byte("XXXX"), b[4:]...)
	os.WriteFile(path, bad, 0o644)
	if _, err := Load(dir); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Record under the wrong filename.
	os.WriteFile(path, b, 0o644)
	os.WriteFile(filepath.Join(dir, "0000000000000000.obj"), b, 0o644)
	if _, err := Load(dir); err == nil {
		t.Fatal("misfiled record accepted")
	}
}

func TestLoadIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "junk.tmp"), []byte("hi"), 0o644)
	s, err := Load(dir)
	if err != nil || s.Len() != 0 {
		t.Fatalf("foreign files broke load: %v", err)
	}
}

func TestSaveRejectsOversize(t *testing.T) {
	dir := t.TempDir()
	s := store.New()
	big := make([]byte, maxData+1)
	s.Put(store.File{Name: "big", Data: big, Version: 1}, store.Inserted)
	if err := Save(dir, s); err == nil {
		t.Fatal("oversize object saved")
	}
}

func TestCheckpointCycleSurvivesRestarts(t *testing.T) {
	dir := t.TempDir()
	s := store.New()
	for round := 0; round < 5; round++ {
		s.Put(store.File{Name: "counter", Data: []byte{byte(round)}, Version: uint64(round + 1)}, store.Inserted)
		if err := Save(dir, s); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := loaded.Peek("counter")
		if f.Version != uint64(round+1) || f.Data[0] != byte(round) {
			t.Fatalf("round %d: %+v", round, f)
		}
		s = loaded // next round continues from the restored state
	}
}
