// Package diskstore persists a node's file store to a directory and
// restores it, so a networked LessLog peer survives restarts — the
// durability a real deployment of the paper's file system needs and the
// in-memory simulators deliberately skip.
//
// The model is checkpoint-based: Save writes every stored object to its
// own file (named by a 64-bit FNV of the object name, with the real name
// kept inside the record and verified on load) and removes files for
// objects that no longer exist; Load rebuilds a store.Store. Access
// counters are ephemeral window state and are not persisted.
//
// Record layout (big endian):
//
//	magic   [4]byte "LLG1"
//	kind    uint8   (store.Inserted / store.Replica)
//	version uint64
//	nameLen uint32, name bytes
//	dataLen uint32, data bytes
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"lesslog/internal/store"
)

var magic = [4]byte{'L', 'L', 'G', '1'}

// ErrCorrupt marks an unreadable record.
var ErrCorrupt = errors.New("diskstore: corrupt record")

// limits mirror the wire protocol's.
const (
	maxName = 4 << 10
	maxData = 16 << 20
)

// fileFor returns the record path for an object name.
func fileFor(dir, name string) string {
	h := fnv.New64a()
	h.Write([]byte(name)) // never fails
	return filepath.Join(dir, fmt.Sprintf("%016x.obj", h.Sum64()))
}

// encode builds one record.
func encode(f store.File, kind store.Kind) ([]byte, error) {
	if len(f.Name) > maxName || len(f.Data) > maxData {
		return nil, fmt.Errorf("diskstore: object %q exceeds size limits", f.Name)
	}
	b := make([]byte, 0, 4+1+8+4+len(f.Name)+4+len(f.Data))
	b = append(b, magic[:]...)
	b = append(b, byte(kind))
	b = binary.BigEndian.AppendUint64(b, f.Version)
	b = binary.BigEndian.AppendUint32(b, uint32(len(f.Name)))
	b = append(b, f.Name...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(f.Data)))
	b = append(b, f.Data...)
	return b, nil
}

// decode parses one record.
func decode(b []byte) (store.File, store.Kind, error) {
	if len(b) < 4+1+8+4 || string(b[:4]) != string(magic[:]) {
		return store.File{}, 0, ErrCorrupt
	}
	kind := store.Kind(b[4])
	if kind != store.Inserted && kind != store.Replica {
		return store.File{}, 0, ErrCorrupt
	}
	version := binary.BigEndian.Uint64(b[5:13])
	b = b[13:]
	nameLen := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if int(nameLen) > maxName || int(nameLen) > len(b) {
		return store.File{}, 0, ErrCorrupt
	}
	name := string(b[:nameLen])
	b = b[nameLen:]
	if len(b) < 4 {
		return store.File{}, 0, ErrCorrupt
	}
	dataLen := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if int(dataLen) > maxData || int(dataLen) != len(b) {
		return store.File{}, 0, ErrCorrupt
	}
	data := make([]byte, dataLen)
	copy(data, b)
	return store.File{Name: name, Data: data, Version: version}, kind, nil
}

// Save checkpoints s into dir (created if missing): every object gets a
// record file, and record files for objects no longer in s are removed.
// Writes go through a temp file + rename, so a crash mid-save leaves
// every record either old or new, never torn.
func Save(dir string, s *store.Store) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, name := range s.AllNames() {
		f, _ := s.Peek(name)
		kind, _ := s.KindOf(name)
		rec, err := encode(f, kind)
		if err != nil {
			return err
		}
		path := fileFor(dir, name)
		want[filepath.Base(path)] = true
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, rec, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			return err
		}
	}
	// Prune records for deleted objects.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".obj") || want[name] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// Load rebuilds a store from dir. A missing directory yields an empty
// store; a corrupt record fails loudly rather than silently dropping
// data.
func Load(dir string) (*store.Store, error) {
	s := store.New()
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".obj") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		f, kind, err := decode(b)
		if err != nil {
			return nil, fmt.Errorf("diskstore: %s: %w", e.Name(), err)
		}
		if fileFor(dir, f.Name) != filepath.Join(dir, e.Name()) {
			return nil, fmt.Errorf("diskstore: %s: name %q does not match its record file", e.Name(), f.Name)
		}
		s.Put(f, kind)
	}
	return s, nil
}
