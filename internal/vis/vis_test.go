package vis

import (
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	out := Plot("demo", xs, []Series{
		{Label: "up", Ys: []float64{0, 10, 20, 30}},
		{Label: "flat", Ys: []float64{15, 15, 15, 15}},
	}, 40, 10)
	if !strings.Contains(out, "demo") {
		t.Fatalf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "o up") || !strings.Contains(out, "x flat") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Y axis labeled with the max, half, and zero.
	for _, want := range []string{"30", "15", " 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("axis label %q missing:\n%s", want, out)
		}
	}
	// The rising series' last point lands on the top row; the first on
	// the bottom row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "o") {
		t.Fatalf("top row lacks the max point:\n%s", out)
	}
}

func TestPlotDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3}
	s := []Series{{Label: "a", Ys: []float64{1, 2, 3}}}
	if Plot("t", xs, s, 20, 6) != Plot("t", xs, s, 20, 6) {
		t.Fatal("plot not deterministic")
	}
}

func TestPlotEmpty(t *testing.T) {
	out := Plot("empty", nil, nil, 20, 6)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot:\n%s", out)
	}
}

func TestPlotAllZeros(t *testing.T) {
	out := Plot("", []float64{0, 1}, []Series{{Label: "z", Ys: []float64{0, 0}}}, 10, 4)
	if out == "" {
		t.Fatal("no output for zero series")
	}
}

func TestPlotPanics(t *testing.T) {
	assertPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanic("tiny canvas", func() { Plot("", []float64{1}, nil, 2, 2) })
	assertPanic("length mismatch", func() {
		Plot("", []float64{1, 2}, []Series{{Label: "a", Ys: []float64{1}}}, 20, 6)
	})
}

func TestMarkerCycling(t *testing.T) {
	xs := []float64{0, 1}
	var series []Series
	for i := 0; i < 8; i++ { // more series than markers
		series = append(series, Series{Label: string(rune('a' + i)), Ys: []float64{1, 2}})
	}
	out := Plot("", xs, series, 20, 6)
	if !strings.Contains(out, "o a") || !strings.Contains(out, "o g") {
		t.Fatalf("markers did not cycle:\n%s", out)
	}
}
