// Package vis renders experiment series as ASCII charts, so
// cmd/lesslog-bench can draw the reproduced figures directly in a
// terminal next to their tables. Plots are deterministic text: fixed
// canvas, per-series markers, a y-axis in data units and a legend.
package vis

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	Label string
	Ys    []float64
}

// markers cycles per series.
var markers = []rune{'o', 'x', '+', '*', '#', '@'}

// Plot draws the series against xs on a width×height character canvas
// (plot area, excluding axes). All series must have len(xs) points.
func Plot(title string, xs []float64, series []Series, width, height int) string {
	if width < 8 || height < 4 {
		panic("vis: canvas too small")
	}
	for _, s := range series {
		if len(s.Ys) != len(xs) {
			panic(fmt.Sprintf("vis: series %q has %d points for %d xs", s.Label, len(s.Ys), len(xs)))
		}
	}
	if len(xs) == 0 {
		return title + "\n(no data)\n"
	}

	xMin, xMax := xs[0], xs[0]
	for _, x := range xs {
		xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
	}
	yMax := 0.0
	for _, s := range series {
		for _, y := range s.Ys {
			yMax = math.Max(yMax, y)
		}
	}
	if yMax == 0 {
		yMax = 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	canvas := make([][]rune, height)
	for r := range canvas {
		canvas[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i, x := range xs {
			col := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
			row := height - 1 - int(math.Round(s.Ys[i]/yMax*float64(height-1)))
			canvas[row][col] = mark
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	axisWidth := len(fmt.Sprintf("%.0f", yMax))
	for r, row := range canvas {
		// Y labels at the top, middle and bottom rows.
		label := strings.Repeat(" ", axisWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.0f", axisWidth, yMax)
		case height / 2:
			label = fmt.Sprintf("%*.0f", axisWidth, yMax/2)
		case height - 1:
			label = fmt.Sprintf("%*.0f", axisWidth, 0.0)
		}
		fmt.Fprintf(&b, "%s │%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s └%s\n", strings.Repeat(" ", axisWidth), strings.Repeat("─", width))
	fmt.Fprintf(&b, "%s  %-*.0f%*.0f\n", strings.Repeat(" ", axisWidth), width/2, xMin, width-width/2, xMax)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}
