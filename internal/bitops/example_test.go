package bitops_test

import (
	"fmt"

	"lesslog/internal/bitops"
)

// Property 4: the physical lookup tree of P(4) in a 16-node system maps
// VIDs to PIDs by XOR with the complement of 4 (1011). The root position
// (VID 1111) is P(4) itself.
func ExamplePIDOf() {
	const m = 4
	root := bitops.PID(4)
	fmt.Printf("complement(4) = %04b\n", bitops.Complement(root, m))
	fmt.Printf("root position holds P(%d)\n", bitops.PIDOf(bitops.RootVID(m), root, m))
	fmt.Printf("P(8) occupies VID %04b\n", bitops.VIDOf(8, root, m))
	// Output:
	// complement(4) = 1011
	// root position holds P(4)
	// P(8) occupies VID 0011
}

// Property 2: the parent of a VID is obtained by setting its leftmost 0
// bit — the step a get request takes toward the target.
func ExampleParentVID() {
	const m = 4
	v := bitops.VID(0b0011)
	for {
		p, ok := bitops.ParentVID(v, m)
		if !ok {
			break
		}
		fmt.Printf("%04b -> %04b\n", v, p)
		v = p
	}
	// Output:
	// 0011 -> 1011
	// 1011 -> 1111
}

// Property 1: a node with i leading ones has i children, produced by
// clearing one bit of the run; they come out in descending-VID order,
// which by Property 3 is descending offspring count — the children-list
// order REPLICATEFILE uses.
func ExampleChildrenVIDs() {
	const m = 4
	for _, c := range bitops.ChildrenVIDs(bitops.RootVID(m), m) {
		fmt.Printf("%04b has %d offspring\n", c, bitops.OffspringCount(c, m))
	}
	// Output:
	// 1110 has 7 offspring
	// 1101 has 3 offspring
	// 1011 has 1 offspring
	// 0111 has 0 offspring
}
