// Package bitops implements the m-bit identifier arithmetic underlying the
// LessLog lookup trees (paper §2.1, Properties 1–4, and the §4 subtree
// split).
//
// A LessLog system is parameterized by m, the identifier width in bits.
// Every node has a physical identifier (PID) in [0, 2^m); every lookup tree
// position has a virtual identifier (VID) in the same range. The unique
// virtual binomial lookup tree is defined over VIDs:
//
//   - the root is the all-ones VID (Property 1's "m continuous 1's bits");
//   - a node whose VID has i leading 1 bits has exactly i children, each
//     obtained by clearing one bit of that leading run (Property 1);
//   - the parent of a non-root VID is obtained by setting its leftmost 0
//     bit (Property 2);
//   - a node's offspring count is monotone in its VID value (Property 3).
//
// The physical lookup tree rooted at node r is the image of the virtual
// tree under XOR with Complement(r): PID = Complement(r) XOR VID, which is
// an involution, so the PID/VID conversion of Property 4 is the same
// operation in both directions.
//
// For the fault-tolerant model (paper §4) the last b bits of a VID are the
// subtree identifier and the remaining m-b bits form the subtree VID; each
// of the 2^b subtrees is itself a binomial lookup tree over its subtree
// VIDs, which this package exposes through the Subtree* functions.
//
// All functions are pure, allocation-free (except the *VIDs slice helpers,
// which have Append variants), and panic only on out-of-range m, which is a
// programmer error, not an input error.
package bitops

import "math/bits"

// VID is a virtual identifier: a position in a lookup tree.
type VID uint32

// PID is a physical identifier: a concrete node.
type PID uint32

// MaxWidth is the largest supported identifier width. 2^30 tree slots is
// far beyond anything the in-memory simulators can hold, and keeping VIDs
// in uint32 keeps the hot routing arithmetic in a single register.
const MaxWidth = 30

// CheckWidth panics unless 1 <= m <= MaxWidth.
func CheckWidth(m int) {
	if m < 1 || m > MaxWidth {
		panic("bitops: identifier width m out of range [1,30]")
	}
}

// Mask returns the m-bit mask 2^m - 1, which is also the root VID.
func Mask(m int) VID {
	CheckWidth(m)
	return VID(1)<<uint(m) - 1
}

// Slots returns the number of identifier slots, 2^m.
func Slots(m int) int {
	CheckWidth(m)
	return 1 << uint(m)
}

// RootVID returns the VID of the lookup-tree root: m continuous 1 bits.
func RootVID(m int) VID { return Mask(m) }

// IsRoot reports whether v is the root VID of an m-bit tree.
func IsRoot(v VID, m int) bool { return v == Mask(m) }

// Complement returns the m-bit complement of p, written p̄ in the paper.
// The physical lookup tree of node r maps VIDs to PIDs by XOR with
// Complement(r).
func Complement(p PID, m int) VID { return VID(p) ^ Mask(m) }

// PIDOf converts a VID in the lookup tree rooted at root to the PID of the
// node occupying that position (Property 4).
func PIDOf(v VID, root PID, m int) PID { return PID(v ^ Complement(root, m)) }

// VIDOf converts a PID to its VID in the lookup tree rooted at root
// (Property 4). It is the inverse of PIDOf; XOR makes the two identical.
func VIDOf(p PID, root PID, m int) VID { return VID(p) ^ Complement(root, m) }

// LeadingOnes returns the length of the run of 1 bits starting at the most
// significant of the m bits of v. By Property 1 this is v's child count; by
// the binomial-tree recurrence its subtree holds exactly 2^LeadingOnes
// positions.
func LeadingOnes(v VID, m int) int {
	x := ^uint32(v) & uint32(Mask(m)) // 1s exactly where v has 0s
	if x == 0 {
		return m
	}
	highestZero := 31 - bits.LeadingZeros32(x)
	return m - 1 - highestZero
}

// ChildCount returns the number of children of v (Property 1).
func ChildCount(v VID, m int) int { return LeadingOnes(v, m) }

// OffspringCount returns the number of proper descendants of v in the
// virtual lookup tree: 2^LeadingOnes(v) - 1. This yields Property 3 —
// offspring count is monotone non-decreasing in VID value — because
// LeadingOnes(v) >= k holds exactly for v >= (2^k - 1) << (m - k), so the
// VID range is partitioned into ascending bands of non-decreasing leading
// runs (property-tested in this package).
func OffspringCount(v VID, m int) int { return 1<<uint(LeadingOnes(v, m)) - 1 }

// SubtreeSize returns the number of positions in the subtree rooted at v,
// including v itself: 2^LeadingOnes(v).
func SubtreeSize(v VID, m int) int { return 1 << uint(LeadingOnes(v, m)) }

// ParentVID returns the parent of v (Property 2: set the leftmost 0 bit)
// and reports whether v has a parent. The root has none.
func ParentVID(v VID, m int) (VID, bool) {
	x := ^uint32(v) & uint32(Mask(m))
	if x == 0 {
		return v, false // root
	}
	highestZero := 31 - bits.LeadingZeros32(x)
	return v | VID(1)<<uint(highestZero), true
}

// Depth returns the number of edges between v and the root. Each step to
// the parent fills exactly one 0 bit, so the depth is the number of 0 bits
// among the m bits of v. Lookup paths therefore never exceed m = O(log N)
// hops, the bound claimed in the paper's introduction.
func Depth(v VID, m int) int {
	return m - bits.OnesCount32(uint32(v)&uint32(Mask(m)))
}

// AppendChildrenVIDs appends the children of v in descending VID order —
// which by Property 3 is descending offspring count, the "children list"
// order of §2.2 — and returns the extended slice.
//
// The leading run of ones occupies bit positions m-1 down to m-lo; clearing
// the least significant bit of the run yields the largest child, so the
// descending order clears positions m-lo, m-lo+1, ..., m-1 in turn.
func AppendChildrenVIDs(dst []VID, v VID, m int) []VID {
	lo := LeadingOnes(v, m)
	for j := m - lo; j < m; j++ {
		dst = append(dst, v&^(VID(1)<<uint(j)))
	}
	return dst
}

// ChildrenVIDs returns the children of v in descending VID order.
func ChildrenVIDs(v VID, m int) []VID {
	lo := LeadingOnes(v, m)
	if lo == 0 {
		return nil
	}
	return AppendChildrenVIDs(make([]VID, 0, lo), v, m)
}

// IsAncestor reports whether a is a proper ancestor of v in the m-bit
// virtual tree. Ancestors are produced by repeatedly filling the leftmost
// 0 bit, so the test walks at most Depth(v) <= m steps.
func IsAncestor(a, v VID, m int) bool {
	if a == v {
		return false
	}
	for {
		p, ok := ParentVID(v, m)
		if !ok {
			return false
		}
		if p == a {
			return true
		}
		v = p
	}
}

// AppendAncestorVIDs appends v's proper ancestors in order (parent first,
// root last) and returns the extended slice.
func AppendAncestorVIDs(dst []VID, v VID, m int) []VID {
	for {
		p, ok := ParentVID(v, m)
		if !ok {
			return dst
		}
		dst = append(dst, p)
		v = p
	}
}

// InSubtreeOf reports whether v lies in the subtree rooted at a (inclusive:
// InSubtreeOf(a, a, m) is true).
func InSubtreeOf(v, a VID, m int) bool {
	return v == a || IsAncestor(a, v, m)
}

// --- Fault-tolerant subtree split (paper §4) ---
//
// With b of the m bits set aside, a VID v splits into
//
//	subtree VID  = v >> b   (the upper m-b bits)
//	subtree ID   = v & (2^b - 1)  (the lower b bits)
//
// and each of the 2^b fixed-ID slices of the tree is itself a binomial
// lookup tree over its (m-b)-bit subtree VIDs.

// CheckSplit panics unless 0 <= b < m and m is a valid width.
func CheckSplit(m, b int) {
	CheckWidth(m)
	if b < 0 || b >= m {
		panic("bitops: fault-tolerance bits b out of range [0,m)")
	}
}

// SubtreeCount returns the number of independent subtrees, 2^b.
func SubtreeCount(b int) int { return 1 << uint(b) }

// SubtreeID returns the subtree identifier of v: its last b bits.
func SubtreeID(v VID, b int) VID { return v & (VID(1)<<uint(b) - 1) }

// SubtreeVID returns the position of v within its subtree: the upper
// m-b bits of v.
func SubtreeVID(v VID, b int) VID { return v >> uint(b) }

// ComposeVID rebuilds a full VID from a subtree VID and a subtree ID.
func ComposeVID(svid, sid VID, b int) VID { return svid<<uint(b) | sid }

// SubtreeRootVID returns the root VID of subtree sid: all-ones subtree VID
// with the given identifier bits.
func SubtreeRootVID(sid VID, m, b int) VID {
	CheckSplit(m, b)
	return ComposeVID(Mask(m-b), sid, b)
}

// SubtreeParentVID returns the parent of v within its own subtree
// (Property 2 applied to the subtree VID) and whether v has one. The
// subtree identifier bits are preserved.
func SubtreeParentVID(v VID, m, b int) (VID, bool) {
	CheckSplit(m, b)
	sp, ok := ParentVID(SubtreeVID(v, b), m-b)
	if !ok {
		return v, false
	}
	return ComposeVID(sp, SubtreeID(v, b), b), true
}

// AppendSubtreeChildrenVIDs appends v's children within its own subtree in
// descending subtree-VID order, as full m-bit VIDs.
func AppendSubtreeChildrenVIDs(dst []VID, v VID, m, b int) []VID {
	CheckSplit(m, b)
	sid := SubtreeID(v, b)
	sv := SubtreeVID(v, b)
	lo := LeadingOnes(sv, m-b)
	for j := m - b - lo; j < m-b; j++ {
		dst = append(dst, ComposeVID(sv&^(VID(1)<<uint(j)), sid, b))
	}
	return dst
}

// SubtreeLeadingOnes returns the leading-ones count of v's subtree VID,
// i.e. its child count within its subtree.
func SubtreeLeadingOnes(v VID, m, b int) int {
	CheckSplit(m, b)
	return LeadingOnes(SubtreeVID(v, b), m-b)
}

// SubtreeOffspringCount returns v's proper-descendant count within its own
// subtree.
func SubtreeOffspringCount(v VID, m, b int) int {
	return 1<<uint(SubtreeLeadingOnes(v, m, b)) - 1
}
