package bitops

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		m    int
		want VID
	}{{1, 1}, {2, 3}, {4, 15}, {10, 1023}, {16, 65535}, {30, 1<<30 - 1}}
	for _, c := range cases {
		if got := Mask(c.m); got != c.want {
			t.Errorf("Mask(%d) = %d, want %d", c.m, got, c.want)
		}
		if got := RootVID(c.m); got != c.want {
			t.Errorf("RootVID(%d) = %d, want %d", c.m, got, c.want)
		}
		if got := Slots(c.m); got != int(c.want)+1 {
			t.Errorf("Slots(%d) = %d, want %d", c.m, got, int(c.want)+1)
		}
	}
}

func TestCheckWidthPanics(t *testing.T) {
	for _, m := range []int{0, -1, 31, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CheckWidth(%d) did not panic", m)
				}
			}()
			CheckWidth(m)
		}()
	}
}

func TestComplement(t *testing.T) {
	// Paper §2.1: complement of 4 in a 16-node system is 1011.
	if got := Complement(4, 4); got != 0b1011 {
		t.Fatalf("Complement(4, m=4) = %04b, want 1011", got)
	}
	// Complement is an involution.
	for m := 1; m <= 12; m++ {
		for p := PID(0); p < PID(Slots(m)); p++ {
			if back := PID(Complement(PID(Complement(p, m)), m)); back != p {
				t.Fatalf("m=%d complement not involutive at %d", m, p)
			}
		}
	}
}

func TestPaperFigure2Conversions(t *testing.T) {
	// The lookup tree of P(4) in a 16-node system (paper Figure 2).
	const m, root = 4, PID(4)
	// Root position: VID 1111 maps to PID 4.
	if got := PIDOf(RootVID(m), root, m); got != root {
		t.Fatalf("root PID = %d, want %d", got, root)
	}
	// P(8) has VID 0011 in the tree of P(4).
	if got := VIDOf(8, root, m); got != 0b0011 {
		t.Fatalf("VIDOf(8) = %04b, want 0011", got)
	}
	// Routing P(8) -> parent: VID 0011 -> 1011 -> PID 0.
	p, ok := ParentVID(0b0011, m)
	if !ok || p != 0b1011 {
		t.Fatalf("ParentVID(0011) = %04b, %v; want 1011, true", p, ok)
	}
	if got := PIDOf(p, root, m); got != 0 {
		t.Fatalf("parent of P(8) in tree of P(4) = P(%d), want P(0)", got)
	}
	// And P(0) -> parent -> P(4): the paper's forwarding chain.
	p2, ok := ParentVID(0b1011, m)
	if !ok || p2 != RootVID(m) {
		t.Fatalf("ParentVID(1011) = %04b, %v; want 1111, true", p2, ok)
	}
	if got := PIDOf(p2, root, m); got != 4 {
		t.Fatalf("grandparent of P(8) = P(%d), want P(4)", got)
	}
}

func TestPaperFigure1Children(t *testing.T) {
	// Paper §2.1 worked example, m = 4: the node of VID 1110 has 3
	// children: 0110, 1010, 1100 (here listed descending: 1100, 1010,
	// 0110). The node of VID 0111 has 0 children.
	got := ChildrenVIDs(0b1110, 4)
	want := []VID{0b1100, 0b1010, 0b0110}
	if len(got) != len(want) {
		t.Fatalf("children of 1110: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("children of 1110: got %v, want %v", got, want)
		}
	}
	if kids := ChildrenVIDs(0b0111, 4); kids != nil {
		t.Fatalf("children of 0111 = %v, want none", kids)
	}
	// "the nodes of VID 1110 and 1100 have 7 and 3 offspring nodes".
	if got := OffspringCount(0b1110, 4); got != 7 {
		t.Fatalf("OffspringCount(1110) = %d, want 7", got)
	}
	if got := OffspringCount(0b1100, 4); got != 3 {
		t.Fatalf("OffspringCount(1100) = %d, want 3", got)
	}
}

func TestParentVIDProperty2(t *testing.T) {
	// Paper §2.1: parent of 0110 is 1110 (convert leftmost 0 bit to 1).
	p, ok := ParentVID(0b0110, 4)
	if !ok || p != 0b1110 {
		t.Fatalf("ParentVID(0110) = %04b, want 1110", p)
	}
	if _, ok := ParentVID(RootVID(4), 4); ok {
		t.Fatal("root must have no parent")
	}
}

func TestLeadingOnesExhaustive(t *testing.T) {
	// Cross-check LeadingOnes against a naive bit loop for every VID at
	// several widths.
	naive := func(v VID, m int) int {
		n := 0
		for i := m - 1; i >= 0; i-- {
			if v&(1<<uint(i)) == 0 {
				break
			}
			n++
		}
		return n
	}
	for _, m := range []int{1, 2, 3, 4, 7, 10, 12} {
		for v := VID(0); v < VID(Slots(m)); v++ {
			if got, want := LeadingOnes(v, m), naive(v, m); got != want {
				t.Fatalf("m=%d LeadingOnes(%b) = %d, want %d", m, v, got, want)
			}
		}
	}
}

func TestChildParentConsistency(t *testing.T) {
	// Every child's parent is the node itself, for every node.
	for _, m := range []int{1, 2, 4, 8, 10} {
		for v := VID(0); v < VID(Slots(m)); v++ {
			for _, c := range ChildrenVIDs(v, m) {
				p, ok := ParentVID(c, m)
				if !ok || p != v {
					t.Fatalf("m=%d parent(child %b of %b) = %b", m, c, v, p)
				}
			}
		}
	}
}

func TestTreeCoversAllSlots(t *testing.T) {
	// Walking children from the root reaches every VID exactly once, and
	// the subtree sizes agree with SubtreeSize.
	for _, m := range []int{1, 3, 6, 10} {
		seen := make(map[VID]bool)
		var walk func(v VID) int
		walk = func(v VID) int {
			if seen[v] {
				t.Fatalf("m=%d VID %b reached twice", m, v)
			}
			seen[v] = true
			size := 1
			for _, c := range ChildrenVIDs(v, m) {
				size += walk(c)
			}
			if size != SubtreeSize(v, m) {
				t.Fatalf("m=%d subtree of %b has %d nodes, SubtreeSize says %d",
					m, v, size, SubtreeSize(v, m))
			}
			return size
		}
		if total := walk(RootVID(m)); total != Slots(m) {
			t.Fatalf("m=%d tree covers %d of %d slots", m, total, Slots(m))
		}
	}
}

func TestProperty3Monotonicity(t *testing.T) {
	for _, m := range []int{1, 4, 10} {
		prev := -1
		for v := VID(0); v < VID(Slots(m)); v++ {
			oc := OffspringCount(v, m)
			if oc < prev {
				t.Fatalf("m=%d offspring count decreased at VID %b: %d < %d",
					m, v, oc, prev)
			}
			prev = oc
		}
	}
}

func TestDepth(t *testing.T) {
	for _, m := range []int{1, 4, 10} {
		for v := VID(0); v < VID(Slots(m)); v++ {
			// Depth equals the number of parent steps to the root.
			d, x := 0, v
			for {
				p, ok := ParentVID(x, m)
				if !ok {
					break
				}
				x = p
				d++
			}
			if got := Depth(v, m); got != d {
				t.Fatalf("m=%d Depth(%b) = %d, want %d", m, v, got, d)
			}
			if d > m {
				t.Fatalf("m=%d depth %d exceeds O(log N) bound m", m, d)
			}
		}
	}
}

func TestChildrenDescendingOrder(t *testing.T) {
	for _, m := range []int{2, 4, 10} {
		for v := VID(0); v < VID(Slots(m)); v++ {
			kids := ChildrenVIDs(v, m)
			for i := 1; i < len(kids); i++ {
				if kids[i-1] <= kids[i] {
					t.Fatalf("m=%d children of %b not descending: %v", m, v, kids)
				}
			}
			// Descending VID must equal descending offspring count
			// (the §2.2 children-list order).
			for i := 1; i < len(kids); i++ {
				if OffspringCount(kids[i-1], m) < OffspringCount(kids[i], m) {
					t.Fatalf("m=%d children of %b not offspring-sorted", m, v)
				}
			}
		}
	}
}

func TestIsAncestorAndInSubtree(t *testing.T) {
	const m = 5
	root := RootVID(m)
	for v := VID(0); v < VID(Slots(m)); v++ {
		if v != root && !IsAncestor(root, v, m) {
			t.Fatalf("root must be ancestor of %b", v)
		}
		if IsAncestor(v, v, m) {
			t.Fatalf("IsAncestor(%b, itself) must be false", v)
		}
		if !InSubtreeOf(v, v, m) {
			t.Fatalf("InSubtreeOf(%b, itself) must be true", v)
		}
	}
	// Brute-force cross-check on a smaller width.
	const m2 = 4
	desc := make(map[VID]map[VID]bool)
	var collect func(v VID) map[VID]bool
	collect = func(v VID) map[VID]bool {
		s := map[VID]bool{}
		for _, c := range ChildrenVIDs(v, m2) {
			s[c] = true
			for d := range collect(c) {
				s[d] = true
			}
		}
		desc[v] = s
		return s
	}
	collect(RootVID(m2))
	for a := VID(0); a < VID(Slots(m2)); a++ {
		for v := VID(0); v < VID(Slots(m2)); v++ {
			want := desc[a][v]
			if got := IsAncestor(a, v, m2); got != want {
				t.Fatalf("IsAncestor(%b, %b) = %v, want %v", a, v, got, want)
			}
		}
	}
}

func TestAncestorVIDs(t *testing.T) {
	const m = 4
	anc := AppendAncestorVIDs(nil, 0b0000, m)
	want := []VID{0b1000, 0b1100, 0b1110, 0b1111}
	if len(anc) != len(want) {
		t.Fatalf("ancestors of 0000 = %v, want %v", anc, want)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("ancestors of 0000 = %v, want %v", anc, want)
		}
	}
}

func TestQuickVIDPIDRoundTrip(t *testing.T) {
	f := func(rawRoot, rawPID uint32, rawM uint8) bool {
		m := int(rawM)%MaxWidth + 1
		root := PID(rawRoot) & PID(Mask(m))
		p := PID(rawPID) & PID(Mask(m))
		v := VIDOf(p, root, m)
		return PIDOf(v, root, m) == p && v <= Mask(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParentIncreasesVID(t *testing.T) {
	// Setting a 0 bit strictly increases the VID: ancestors always have
	// larger VIDs, the fact behind the max-VID placement invariant.
	f := func(rawV uint32, rawM uint8) bool {
		m := int(rawM)%MaxWidth + 1
		v := VID(rawV) & Mask(m)
		p, ok := ParentVID(v, m)
		if !ok {
			return v == RootVID(m)
		}
		return p > v && LeadingOnes(p, m) >= LeadingOnes(v, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeSplit(t *testing.T) {
	// Paper Figure 4: m=4, b=2 gives 4 subtrees; the subtree VID of the
	// root of each subtree is 11 (all ones in m-b bits).
	const m, b = 4, 2
	if got := SubtreeCount(b); got != 4 {
		t.Fatalf("SubtreeCount(2) = %d, want 4", got)
	}
	for sid := VID(0); sid < 4; sid++ {
		r := SubtreeRootVID(sid, m, b)
		if SubtreeVID(r, b) != Mask(m-b) {
			t.Fatalf("subtree %02b root svid = %b, want 11", sid, SubtreeVID(r, b))
		}
		if SubtreeID(r, b) != sid {
			t.Fatalf("subtree root id mismatch")
		}
		if _, ok := SubtreeParentVID(r, m, b); ok {
			t.Fatalf("subtree root %04b must have no subtree parent", r)
		}
	}
	// Compose/decompose round trip.
	for v := VID(0); v < VID(Slots(m)); v++ {
		if ComposeVID(SubtreeVID(v, b), SubtreeID(v, b), b) != v {
			t.Fatalf("compose/decompose failed at %04b", v)
		}
	}
}

func TestSubtreeIsBinomialTree(t *testing.T) {
	// Each subtree must itself cover exactly its 2^(m-b) members and obey
	// the child/parent relations.
	for _, cfg := range []struct{ m, b int }{{4, 2}, {6, 1}, {8, 3}, {10, 2}} {
		m, b := cfg.m, cfg.b
		for sid := VID(0); sid < VID(SubtreeCount(b)); sid++ {
			seen := make(map[VID]bool)
			var walk func(v VID) int
			walk = func(v VID) int {
				if SubtreeID(v, b) != sid {
					t.Fatalf("m=%d b=%d node %b escaped subtree %b", m, b, v, sid)
				}
				seen[v] = true
				n := 1
				for _, c := range AppendSubtreeChildrenVIDs(nil, v, m, b) {
					p, ok := SubtreeParentVID(c, m, b)
					if !ok || p != v {
						t.Fatalf("m=%d b=%d subtree parent(%b) = %b, want %b", m, b, c, p, v)
					}
					n += walk(c)
				}
				return n
			}
			if total := walk(SubtreeRootVID(sid, m, b)); total != 1<<uint(m-b) {
				t.Fatalf("m=%d b=%d subtree %b covers %d of %d", m, b, sid, total, 1<<uint(m-b))
			}
		}
	}
}

func TestSubtreeOffspringCount(t *testing.T) {
	const m, b = 6, 2
	for v := VID(0); v < VID(Slots(m)); v++ {
		want := 1<<uint(LeadingOnes(SubtreeVID(v, b), m-b)) - 1
		if got := SubtreeOffspringCount(v, m, b); got != want {
			t.Fatalf("SubtreeOffspringCount(%b) = %d, want %d", v, got, want)
		}
	}
}

func TestCheckSplitPanics(t *testing.T) {
	for _, c := range []struct{ m, b int }{{4, 4}, {4, -1}, {4, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CheckSplit(%d,%d) did not panic", c.m, c.b)
				}
			}()
			CheckSplit(c.m, c.b)
		}()
	}
}

func TestAppendChildrenReuse(t *testing.T) {
	// Append variants must honor existing contents.
	buf := []VID{99}
	buf = AppendChildrenVIDs(buf, RootVID(3), 3)
	if buf[0] != 99 || len(buf) != 4 {
		t.Fatalf("AppendChildrenVIDs clobbered prefix: %v", buf)
	}
}

func BenchmarkLeadingOnes(b *testing.B) {
	const m = 20
	r := rand.New(rand.NewSource(1))
	vs := make([]VID, 1024)
	for i := range vs {
		vs[i] = VID(r.Uint32()) & Mask(m)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += LeadingOnes(vs[i&1023], m)
	}
	_ = sink
}

func BenchmarkParentVID(b *testing.B) {
	const m = 20
	r := rand.New(rand.NewSource(2))
	vs := make([]VID, 1024)
	for i := range vs {
		vs[i] = VID(r.Uint32()) & Mask(m)
	}
	b.ResetTimer()
	var sink VID
	for i := 0; i < b.N; i++ {
		p, _ := ParentVID(vs[i&1023], m)
		sink ^= p
	}
	_ = sink
}
